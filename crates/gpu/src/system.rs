//! The assembled GPU + HMC system and its discrete-event engine.
//!
//! Warps are scheduled through one global event heap keyed by
//! `(ready_time, warp_slot)`; each step issues one warp instruction on
//! its SM (a serial issue resource), walks the memory hierarchy, and
//! requeues the warp at its next ready time. This "next-free-time"
//! engine is what makes multi-millisecond co-simulation windows cheap
//! while still producing bank-, link-, and cache-accurate traffic.
//!
//! Approximations (documented per DESIGN.md):
//! * warps block in-order on load results (no scoreboarded overlap within
//!   a warp) — latency hiding happens across warps, as on a real GPU;
//! * stores and no-return atomics are fire-and-forget past *request
//!   acceptance* (link serialization), which bounds outstanding traffic
//!   at link rate;
//! * functional execution happens at trace-generation (dispatch) time,
//!   standard trace-driven practice.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use coolpim_hmc::{Hmc, Ps, Request};
use coolpim_telemetry::{TelemetryEvent, TraceTrack};

use crate::cache::{Cache, CacheOutcome};
use crate::coalesce::coalesce_into;
use crate::config::GpuConfig;
use crate::controller::OffloadController;
use crate::isa::{WarpOp, WarpTrace};
use crate::kernel::Kernel;
use crate::stats::GpuStats;

/// Why `run_until` returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The workload completed; `GpuStats::end_ps` holds the finish time.
    Finished,
    /// The time horizon was reached with work still pending.
    Paused,
    /// The cube thermally shut down; the run cannot make progress.
    Shutdown,
}

#[derive(Debug, Clone, Copy)]
struct SmState {
    issue_next_free: Ps,
    resident_blocks: usize,
    resident_warps: usize,
}

#[derive(Debug)]
struct WarpRun {
    trace: WarpTrace,
    pc: usize,
    sm: usize,
    slot_in_sm: usize,
    block_slot: usize,
    pim_enabled: bool,
}

#[derive(Debug, Clone, Copy)]
struct BlockRun {
    id: usize,
    sm: usize,
    pim: bool,
    warps_left: usize,
}

/// The host GPU coupled to an HMC cube.
pub struct GpuSystem {
    cfg: GpuConfig,
    hmc: Hmc,
    l1: Vec<Cache>,
    l2: Cache,
    sms: Vec<SmState>,
    warps: Vec<Option<WarpRun>>,
    free_warps: Vec<usize>,
    blocks: Vec<Option<BlockRun>>,
    free_blocks: Vec<usize>,
    heap: BinaryHeap<Reverse<(Ps, usize)>>,
    /// Next block id of the current grid awaiting dispatch.
    next_block: usize,
    grid_blocks: usize,
    /// Earliest dispatch time for blocks of the current grid.
    launch_ready: Ps,
    now: Ps,
    finished: bool,
    shutdown: bool,
    started: bool,
    stats: GpuStats,
    scratch: Vec<u64>,
    /// Kernel launch/retire events since the last drain (one per grid —
    /// rare; drained at epoch boundaries by the co-simulator).
    events: Vec<TelemetryEvent>,
    /// Timeline track for the engine's scheduling spans, when trace
    /// timelines are on: one `warp_scheduling` span per `run_until`
    /// call with `dispatch` children per block-fill pass. Per-warp
    /// stepping is deliberately not traced — at one span per issued
    /// instruction the tracer itself would dominate the epoch.
    trace: Option<TraceTrack>,
}

impl GpuSystem {
    /// Builds a system from a GPU configuration and a cube.
    pub fn new(cfg: GpuConfig, hmc: Hmc) -> Self {
        let l1 = (0..cfg.sms)
            .map(|_| Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes))
            .collect();
        let l2 = Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes);
        let sms = vec![
            SmState {
                issue_next_free: 0,
                resident_blocks: 0,
                resident_warps: 0
            };
            cfg.sms
        ];
        Self {
            cfg,
            hmc,
            l1,
            l2,
            sms,
            warps: Vec::new(),
            free_warps: Vec::new(),
            blocks: Vec::new(),
            free_blocks: Vec::new(),
            heap: BinaryHeap::new(),
            next_block: 0,
            grid_blocks: 0,
            launch_ready: 0,
            now: 0,
            finished: false,
            shutdown: false,
            started: false,
            stats: GpuStats::default(),
            scratch: Vec::with_capacity(32),
            events: Vec::new(),
            trace: None,
        }
    }

    /// Attaches the engine's timeline track (see the `trace` field).
    pub fn set_trace(&mut self, track: TraceTrack) {
        self.trace = Some(track);
    }

    /// Flushes any attached timeline track into its tracer (end-of-run;
    /// also folds the track's self-cost into the tracer's shared total).
    pub fn flush_trace(&mut self) {
        if let Some(t) = self.trace.as_mut() {
            t.flush();
        }
    }

    /// Table IV system: 16-SM GPU + HMC 2.0.
    pub fn paper() -> Self {
        Self::new(GpuConfig::paper(), Hmc::hmc20())
    }

    /// The cube (for thermal updates and window drains).
    pub fn hmc(&self) -> &Hmc {
        &self.hmc
    }

    /// Mutable cube access.
    pub fn hmc_mut(&mut self) -> &mut Hmc {
        &mut self.hmc
    }

    /// Engine statistics.
    pub fn stats(&self) -> &GpuStats {
        &self.stats
    }

    /// Latest processed event time (ps).
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Whether the workload completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// L2 hit rate so far.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }

    /// Begins executing `kernel` at simulation time `start`. Must be
    /// called once before `run_until`, with the same kernel passed to
    /// every subsequent call.
    pub fn start(
        &mut self,
        kernel: &mut dyn Kernel,
        controller: &mut dyn OffloadController,
        start: Ps,
    ) {
        assert!(!self.started, "start() called twice");
        self.started = true;
        self.grid_blocks = kernel.grid_blocks();
        self.next_block = 0;
        self.launch_ready = start;
        self.now = start;
        self.stats.launches = 1;
        self.events.push(TelemetryEvent::KernelLaunch {
            t_ps: start,
            launch: 1,
        });
        self.fill_sms(kernel, controller);
    }

    /// Moves the engine's buffered telemetry events (kernel launches and
    /// the final retire) into `out`.
    pub fn drain_events(&mut self, out: &mut Vec<TelemetryEvent>) {
        out.append(&mut self.events);
    }

    /// Processes events up to `until`; returns why it stopped.
    pub fn run_until(
        &mut self,
        kernel: &mut dyn Kernel,
        controller: &mut dyn OffloadController,
        until: Ps,
    ) -> RunOutcome {
        let tok = self.trace.as_mut().map(|t| t.begin("warp_scheduling"));
        let out = self.run_until_inner(kernel, controller, until);
        if let (Some(t), Some(tok)) = (self.trace.as_mut(), tok) {
            t.end(tok);
        }
        out
    }

    fn run_until_inner(
        &mut self,
        kernel: &mut dyn Kernel,
        controller: &mut dyn OffloadController,
        until: Ps,
    ) -> RunOutcome {
        assert!(self.started, "run_until() before start()");
        loop {
            if self.shutdown {
                return RunOutcome::Shutdown;
            }
            if self.finished {
                return RunOutcome::Finished;
            }
            match self.heap.pop() {
                None => {
                    // No resident warps. Dispatch stragglers or move to
                    // the next launch.
                    if self.next_block < self.grid_blocks {
                        let before = self.next_block;
                        self.fill_sms(kernel, controller);
                        assert!(
                            self.next_block > before,
                            "dispatch made no progress (SM capacity misconfigured?)"
                        );
                        continue;
                    }
                    if kernel.next_launch() {
                        self.grid_blocks = kernel.grid_blocks();
                        self.next_block = 0;
                        self.launch_ready = self.now + self.cfg.launch_overhead;
                        self.stats.launches += 1;
                        self.events.push(TelemetryEvent::KernelLaunch {
                            t_ps: self.launch_ready,
                            launch: self.stats.launches,
                        });
                        self.fill_sms(kernel, controller);
                        continue;
                    }
                    self.finished = true;
                    self.stats.end_ps = self.now;
                    self.events.push(TelemetryEvent::KernelRetire {
                        t_ps: self.now,
                        launch: self.stats.launches,
                    });
                    return RunOutcome::Finished;
                }
                Some(Reverse((ready, slot))) => {
                    if ready > until {
                        self.heap.push(Reverse((ready, slot)));
                        return RunOutcome::Paused;
                    }
                    self.step_warp(slot, ready, kernel, controller);
                }
            }
        }
    }

    /// Convenience: run to completion (or shutdown) with no horizon.
    pub fn run_to_completion(
        &mut self,
        kernel: &mut dyn Kernel,
        controller: &mut dyn OffloadController,
    ) -> RunOutcome {
        self.start(kernel, controller, 0);
        self.run_until(kernel, controller, Ps::MAX)
    }

    fn fill_sms(&mut self, kernel: &mut dyn Kernel, controller: &mut dyn OffloadController) {
        let tok = self.trace.as_mut().map(|t| t.begin("dispatch"));
        self.fill_sms_inner(kernel, controller);
        if let (Some(t), Some(tok)) = (self.trace.as_mut(), tok) {
            t.end(tok);
        }
    }

    fn fill_sms_inner(&mut self, kernel: &mut dyn Kernel, controller: &mut dyn OffloadController) {
        let wpb = kernel.warps_per_block();
        assert!(
            wpb > 0 && wpb <= self.cfg.max_warps_per_sm,
            "warps/block {wpb} unschedulable"
        );
        // Round-robin over SMs until no SM can take another block.
        let mut placed = true;
        while placed && self.next_block < self.grid_blocks {
            placed = false;
            for sm in 0..self.cfg.sms {
                if self.next_block >= self.grid_blocks {
                    break;
                }
                let s = &self.sms[sm];
                if s.resident_blocks < self.cfg.max_blocks_per_sm
                    && s.resident_warps + wpb <= self.cfg.max_warps_per_sm
                {
                    let id = self.next_block;
                    self.next_block += 1;
                    self.dispatch_block(id, sm, kernel, controller);
                    placed = true;
                }
            }
        }
    }

    fn dispatch_block(
        &mut self,
        id: usize,
        sm: usize,
        kernel: &mut dyn Kernel,
        controller: &mut dyn OffloadController,
    ) {
        let t = self.launch_ready.max(self.now);
        let pim = controller.on_block_launch(id, t);
        let trace = kernel.block_trace(id, pim);
        if pim {
            self.stats.pim_blocks += 1;
        } else {
            self.stats.non_pim_blocks += 1;
        }
        let block_slot = match self.free_blocks.pop() {
            Some(s) => s,
            None => {
                self.blocks.push(None);
                self.blocks.len() - 1
            }
        };
        // Idle warps (empty traces — e.g. topology scans past the vertex
        // range) retire immediately and never enter the event heap.
        let live_warps = trace.warps.iter().filter(|w| !w.is_empty()).count();
        if live_warps == 0 {
            // The whole block is a no-op: complete it on the spot.
            controller.on_block_complete(id, pim, t);
            self.free_blocks.push(block_slot);
            return;
        }
        self.blocks[block_slot] = Some(BlockRun {
            id,
            sm,
            pim,
            warps_left: live_warps,
        });
        self.sms[sm].resident_blocks += 1;
        self.sms[sm].resident_warps += live_warps;
        for (wi, wt) in trace.warps.into_iter().enumerate() {
            if wt.is_empty() {
                continue;
            }
            let warp_slot = match self.free_warps.pop() {
                Some(s) => s,
                None => {
                    self.warps.push(None);
                    self.warps.len() - 1
                }
            };
            self.warps[warp_slot] = Some(WarpRun {
                trace: wt,
                pc: 0,
                sm,
                slot_in_sm: wi,
                block_slot,
                pim_enabled: pim,
            });
            self.heap.push(Reverse((t, warp_slot)));
        }
    }

    // Index loops below iterate a scratch vector while `&mut self` methods
    // are called in the body — iterator forms would hold a borrow.
    #[allow(clippy::needless_range_loop)]
    fn step_warp(
        &mut self,
        slot: usize,
        ready: Ps,
        kernel: &mut dyn Kernel,
        controller: &mut dyn OffloadController,
    ) {
        let mut warp = self.warps[slot].take().expect("warp slot empty");
        let sm = warp.sm;
        let issue_start = self.sms[sm].issue_next_free.max(ready);
        self.now = self.now.max(issue_start);
        self.stats.instructions += 1;

        let cycle = self.cfg.cycle_ps();
        let op = &warp.trace.ops[warp.pc];
        warp.pc += 1;

        let next_ready = match op {
            WarpOp::Compute(cycles) => {
                self.sms[sm].issue_next_free = issue_start + cycle;
                issue_start + self.cfg.cycles_ps(*cycles)
            }
            WarpOp::Load(addrs) => {
                self.stats.loads += 1;
                let mut blocks = std::mem::take(&mut self.scratch);
                coalesce_into(addrs, &mut blocks);
                let txs = blocks.len().max(1) as u64;
                self.sms[sm].issue_next_free = issue_start + txs * cycle;
                let mut data_ready = issue_start + self.cfg.cycles_ps(self.cfg.l1_hit_cycles);
                for i in 0..blocks.len() {
                    let r = self.load_block(sm, issue_start, blocks[i], controller);
                    data_ready = data_ready.max(r);
                }
                self.scratch = blocks;
                data_ready
            }
            WarpOp::Store(addrs) => {
                self.stats.stores += 1;
                let mut blocks = std::mem::take(&mut self.scratch);
                coalesce_into(addrs, &mut blocks);
                let txs = blocks.len().max(1) as u64;
                self.sms[sm].issue_next_free = issue_start + txs * cycle;
                let mut accepted = issue_start + self.cfg.cycles_ps(self.cfg.store_issue_cycles);
                for i in 0..blocks.len() {
                    let a = self.store_block(issue_start, blocks[i], controller);
                    accepted = accepted.max(a);
                }
                self.scratch = blocks;
                accepted
            }
            WarpOp::Atomic { op, addrs } => {
                let op = *op;
                let offload = warp.pim_enabled
                    && controller.warp_may_offload(sm, warp.slot_in_sm, issue_start);
                if offload {
                    let lanes = addrs.len() as u64;
                    self.sms[sm].issue_next_free = issue_start + lanes.max(1) * cycle;
                    self.stats.pim_lane_ops += lanes;
                    let mut done = issue_start + self.cfg.cycles_ps(self.cfg.store_issue_cycles);
                    let wait_for_data = op.returns_data();
                    // Each active lane is one PIM instruction, tagged
                    // with the issuing SM for hot-spot attribution.
                    for li in 0..addrs.len() {
                        let addr = addrs[li];
                        let c =
                            self.hmc
                                .submit_from(issue_start, &Request::pim(op, addr), Some(sm));
                        self.note_completion(&c, controller);
                        done = done.max(if wait_for_data {
                            c.finish_ps
                        } else {
                            c.req_accepted_ps
                        });
                    }
                    done
                } else {
                    // Host path: the atomic executes at the L2; traffic is
                    // per unique 64-byte line.
                    let lanes = addrs.len() as u64;
                    self.stats.host_lane_ops += lanes;
                    let mut blocks = std::mem::take(&mut self.scratch);
                    coalesce_into(addrs, &mut blocks);
                    let txs = blocks.len().max(1) as u64;
                    self.sms[sm].issue_next_free = issue_start + txs * cycle;
                    let wait_for_data = op.returns_data();
                    let mut done = issue_start
                        + self
                            .cfg
                            .cycles_ps(self.cfg.l1_hit_cycles + self.cfg.l2_hit_cycles);
                    for i in 0..blocks.len() {
                        let (accepted, data) =
                            self.host_atomic_block(issue_start, blocks[i], controller);
                        done = done.max(if wait_for_data { data } else { accepted });
                    }
                    self.scratch = blocks;
                    done
                }
            }
        };

        if warp.pc == warp.trace.ops.len() {
            // Warp retired.
            let block_slot = warp.block_slot;
            self.sms[sm].resident_warps -= 1;
            self.free_warps.push(slot);
            self.now = self.now.max(next_ready.min(Ps::MAX / 2));
            let done = {
                let b = self.blocks[block_slot].as_mut().expect("block slot empty");
                b.warps_left -= 1;
                b.warps_left == 0
            };
            if done {
                let b = self.blocks[block_slot].take().unwrap();
                self.sms[b.sm].resident_blocks -= 1;
                controller.on_block_complete(b.id, b.pim, self.now);
                self.free_blocks.push(block_slot);
                self.fill_sms(kernel, controller);
            }
        } else {
            self.warps[slot] = Some(warp);
            self.heap.push(Reverse((next_ready, slot)));
        }
    }

    /// Load one 64-byte block through L1 → L2 → HMC; returns data-ready
    /// time.
    fn load_block(
        &mut self,
        sm: usize,
        t: Ps,
        addr: u64,
        controller: &mut dyn OffloadController,
    ) -> Ps {
        if self.l1[sm].access(addr, false).is_hit() {
            return t + self.cfg.cycles_ps(self.cfg.l1_hit_cycles);
        }
        let t_l2 = t + self.cfg.cycles_ps(self.cfg.l1_hit_cycles);
        match self.l2.access(addr, false) {
            CacheOutcome::Hit => t_l2 + self.cfg.cycles_ps(self.cfg.l2_hit_cycles),
            CacheOutcome::Miss { writeback } => {
                let t_mem = t_l2 + self.cfg.cycles_ps(self.cfg.l2_hit_cycles);
                if let Some(wb) = writeback {
                    let c = self.hmc.submit(t_mem, &Request::write(wb));
                    self.note_completion(&c, controller);
                }
                let c = self.hmc.submit(t_mem, &Request::read(addr));
                self.note_completion(&c, controller);
                c.finish_ps
            }
        }
    }

    /// Store one block (write-allocate at L2); returns acceptance time.
    fn store_block(&mut self, t: Ps, addr: u64, controller: &mut dyn OffloadController) -> Ps {
        let t_l2 = t + self.cfg.cycles_ps(self.cfg.l1_hit_cycles);
        match self.l2.access(addr, true) {
            CacheOutcome::Hit => t_l2,
            CacheOutcome::Miss { writeback } => {
                if let Some(wb) = writeback {
                    let c = self.hmc.submit(t_l2, &Request::write(wb));
                    self.note_completion(&c, controller);
                }
                // Write-allocate: fetch the line, but the store is posted
                // — the warp only waits for request acceptance.
                let c = self.hmc.submit(t_l2, &Request::read(addr));
                self.note_completion(&c, controller);
                c.req_accepted_ps
            }
        }
    }

    /// Host atomic on one block at the L2; returns (acceptance,
    /// data-ready).
    fn host_atomic_block(
        &mut self,
        t: Ps,
        addr: u64,
        controller: &mut dyn OffloadController,
    ) -> (Ps, Ps) {
        let t_l2 = t + self
            .cfg
            .cycles_ps(self.cfg.l1_hit_cycles + self.cfg.l2_hit_cycles);
        match self.l2.access(addr, true) {
            CacheOutcome::Hit => (t_l2, t_l2),
            CacheOutcome::Miss { writeback } => {
                if let Some(wb) = writeback {
                    let c = self.hmc.submit(t_l2, &Request::write(wb));
                    self.note_completion(&c, controller);
                }
                let c = self.hmc.submit(t_l2, &Request::read(addr));
                self.note_completion(&c, controller);
                (c.req_accepted_ps, c.finish_ps)
            }
        }
    }

    fn note_completion(
        &mut self,
        c: &coolpim_hmc::Completion,
        controller: &mut dyn OffloadController,
    ) {
        if c.shutdown {
            self.shutdown = true;
        }
        if c.thermal_warning {
            self.stats.warnings_seen += 1;
            controller.on_thermal_warning(c.finish_ps, c.warning_id.unwrap_or(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{AlwaysOffload, NeverOffload};
    use crate::isa::{BlockTrace, WarpOp};
    use crate::kernel::KernelProfile;
    use coolpim_hmc::PimOp;

    /// Synthetic kernel: every warp does `loads` scattered loads and
    /// `atomics` scattered atomics per launch.
    struct SyntheticKernel {
        launches_left: usize,
        blocks: usize,
        warps: usize,
        loads: usize,
        atomics: usize,
        seed: u64,
    }

    impl SyntheticKernel {
        fn new(launches: usize, blocks: usize, warps: usize, loads: usize, atomics: usize) -> Self {
            Self {
                launches_left: launches,
                blocks,
                warps,
                loads,
                atomics,
                seed: 0x9E3779B97F4A7C15,
            }
        }
        fn addr(&self, i: u64) -> u64 {
            // Cheap deterministic scatter over 256 MB.
            (i.wrapping_mul(self.seed) >> 13) % (256 << 20)
        }
    }

    impl Kernel for SyntheticKernel {
        fn name(&self) -> &str {
            "synthetic"
        }
        fn grid_blocks(&self) -> usize {
            self.blocks
        }
        fn warps_per_block(&self) -> usize {
            self.warps
        }
        fn block_trace(&mut self, block: usize, _pim_enabled: bool) -> BlockTrace {
            let mut warps = Vec::with_capacity(self.warps);
            for w in 0..self.warps {
                let mut ops = Vec::new();
                let base = (block * self.warps + w) as u64 * 1000;
                for l in 0..self.loads {
                    ops.push(WarpOp::Load(
                        (0..32u64)
                            .map(|lane| self.addr(base + l as u64 * 37 + lane))
                            .collect(),
                    ));
                    ops.push(WarpOp::Compute(6));
                }
                for a in 0..self.atomics {
                    ops.push(WarpOp::Atomic {
                        op: PimOp::SignedAdd,
                        addrs: (0..32u64)
                            .map(|lane| self.addr(base + 777 + a as u64 * 91 + lane))
                            .collect(),
                    });
                }
                warps.push(WarpTrace { ops });
            }
            BlockTrace { warps }
        }
        fn next_launch(&mut self) -> bool {
            self.launches_left = self.launches_left.saturating_sub(1);
            self.launches_left > 0
        }
        fn profile(&self) -> KernelProfile {
            KernelProfile {
                pim_intensity: 0.3,
                divergence_ratio: 0.1,
            }
        }
    }

    #[test]
    fn finishes_and_reports_time() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let mut k = SyntheticKernel::new(1, 8, 4, 4, 2);
        let out = sys.run_to_completion(&mut k, &mut NeverOffload);
        assert_eq!(out, RunOutcome::Finished);
        assert!(sys.stats().end_ps > 0);
        assert!(sys.stats().instructions > 0);
        assert_eq!(sys.stats().pim_lane_ops, 0);
        assert!(sys.stats().host_lane_ops > 0);
    }

    #[test]
    fn offloading_reduces_link_traffic() {
        let mut base = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let mut k1 = SyntheticKernel::new(1, 16, 4, 2, 4);
        base.run_to_completion(&mut k1, &mut NeverOffload);
        let base_flits = base.hmc().totals().flits;

        let mut off = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let mut k2 = SyntheticKernel::new(1, 16, 4, 2, 4);
        off.run_to_completion(&mut k2, &mut AlwaysOffload);
        let off_flits = off.hmc().totals().flits;

        assert!(
            off_flits < base_flits,
            "PIM offloading should cut FLIT traffic: {off_flits} vs {base_flits}"
        );
        assert!(off.stats().pim_lane_ops > 0);
        assert_eq!(off.stats().host_lane_ops, 0);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let mut k = SyntheticKernel::new(2, 8, 4, 6, 2);
        let mut ctrl = AlwaysOffload;
        sys.start(&mut k, &mut ctrl, 0);
        let mut pauses = 0;
        let mut t = 2_000; // 2 ns horizon steps
        loop {
            match sys.run_until(&mut k, &mut ctrl, t) {
                RunOutcome::Finished => break,
                RunOutcome::Paused => {
                    pauses += 1;
                    t += 10_000;
                }
                RunOutcome::Shutdown => panic!("unexpected shutdown"),
            }
            assert!(pauses < 1_000_000, "no forward progress");
        }
        assert!(pauses > 0, "expected at least one pause");
        assert!(sys.is_finished());
    }

    #[test]
    fn multi_launch_kernels_relaunch() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let mut k = SyntheticKernel::new(3, 4, 2, 1, 1);
        sys.run_to_completion(&mut k, &mut NeverOffload);
        assert_eq!(sys.stats().launches, 3);
    }

    #[test]
    fn launch_and_retire_events_bracket_the_run() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let mut k = SyntheticKernel::new(3, 4, 2, 1, 1);
        sys.run_to_completion(&mut k, &mut NeverOffload);
        let mut evs = Vec::new();
        sys.drain_events(&mut evs);
        let launches: Vec<_> = evs
            .iter()
            .filter(|e| e.kind() == "KernelLaunch")
            .map(|e| e.t_ps())
            .collect();
        assert_eq!(launches.len(), 3, "one event per grid launch");
        assert!(
            launches.windows(2).all(|w| w[0] <= w[1]),
            "launch times monotone"
        );
        let retires: Vec<_> = evs.iter().filter(|e| e.kind() == "KernelRetire").collect();
        assert_eq!(retires.len(), 1, "single retire at workload completion");
        assert_eq!(retires[0].t_ps(), sys.stats().end_ps);
        let mut again = Vec::new();
        sys.drain_events(&mut again);
        assert!(again.is_empty(), "drain empties the buffer");
    }

    #[test]
    fn warnings_propagate_to_controller() {
        struct CountingCtrl {
            warnings: u64,
            ids: Vec<u64>,
        }
        impl OffloadController for CountingCtrl {
            fn on_block_launch(&mut self, _b: usize, _t: Ps) -> bool {
                true
            }
            fn on_thermal_warning(&mut self, _t: Ps, warning_id: u64) {
                self.warnings += 1;
                self.ids.push(warning_id);
            }
        }
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        sys.hmc_mut().set_peak_dram_temp(90.0);
        let mut k = SyntheticKernel::new(1, 4, 2, 2, 2);
        let mut ctrl = CountingCtrl {
            warnings: 0,
            ids: Vec::new(),
        };
        sys.run_to_completion(&mut k, &mut ctrl);
        assert!(ctrl.warnings > 0);
        assert!(sys.stats().warnings_seen > 0);
        // Every delivered warning cites the cube's (single) episode.
        assert!(ctrl.ids.iter().all(|&id| id == 1), "ids: {:?}", ctrl.ids);
    }

    #[test]
    fn shutdown_surfaces_as_outcome() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        sys.hmc_mut().set_peak_dram_temp(106.0);
        let mut k = SyntheticKernel::new(1, 4, 2, 2, 0);
        let out = sys.run_to_completion(&mut k, &mut NeverOffload);
        assert_eq!(out, RunOutcome::Shutdown);
    }

    #[test]
    fn sw_granularity_blocks_mix_pim_and_shadow() {
        /// Grant PIM bodies to even blocks only.
        struct EvenBlocks;
        impl OffloadController for EvenBlocks {
            fn on_block_launch(&mut self, b: usize, _t: Ps) -> bool {
                b.is_multiple_of(2)
            }
        }
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let mut k = SyntheticKernel::new(1, 8, 2, 1, 2);
        sys.run_to_completion(&mut k, &mut EvenBlocks);
        assert_eq!(sys.stats().pim_blocks, 4);
        assert_eq!(sys.stats().non_pim_blocks, 4);
        assert!(sys.stats().pim_lane_ops > 0);
        assert!(sys.stats().host_lane_ops > 0);
    }

    #[test]
    fn hot_cube_slows_the_same_workload() {
        let run_with_temp = |temp: f64| {
            let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
            sys.hmc_mut().set_peak_dram_temp(temp);
            let mut k = SyntheticKernel::new(1, 16, 8, 8, 0);
            sys.run_to_completion(&mut k, &mut NeverOffload);
            sys.stats().end_ps
        };
        let cool = run_with_temp(40.0);
        let hot = run_with_temp(96.0);
        assert!(
            hot > cool,
            "critical-phase derating must slow the run: {hot} vs {cool}"
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::controller::{AlwaysOffload, NeverOffload};
    use crate::isa::{BlockTrace, WarpOp, WarpTrace};
    use crate::kernel::KernelProfile;
    use coolpim_hmc::PimOp;

    /// One block, one warp, fixed op list.
    struct OneShot {
        ops: Vec<WarpOp>,
        fired: bool,
    }

    impl OneShot {
        fn new(ops: Vec<WarpOp>) -> Self {
            Self { ops, fired: false }
        }
    }

    impl Kernel for OneShot {
        fn name(&self) -> &str {
            "one-shot"
        }
        fn grid_blocks(&self) -> usize {
            1
        }
        fn warps_per_block(&self) -> usize {
            1
        }
        fn block_trace(&mut self, _block: usize, _pim: bool) -> BlockTrace {
            assert!(!self.fired, "single block requested twice");
            self.fired = true;
            BlockTrace {
                warps: vec![WarpTrace {
                    ops: self.ops.clone(),
                }],
            }
        }
        fn next_launch(&mut self) -> bool {
            false
        }
        fn profile(&self) -> KernelProfile {
            KernelProfile {
                pim_intensity: 0.5,
                divergence_ratio: 0.0,
            }
        }
    }

    #[test]
    fn compute_only_kernel_time_matches_cycles() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let mut k = OneShot::new(vec![WarpOp::Compute(1000)]);
        sys.run_to_completion(&mut k, &mut NeverOffload);
        let cycles = sys.stats().end_ps / GpuConfig::tiny().cycle_ps();
        assert!((1000..1100).contains(&cycles), "took {cycles} cycles");
    }

    #[test]
    fn coalesced_load_is_one_transaction() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let addrs: Vec<u64> = (0..32u64).map(|l| l * 2).collect(); // one 64B line
        let mut k = OneShot::new(vec![WarpOp::Load(addrs)]);
        sys.run_to_completion(&mut k, &mut NeverOffload);
        assert_eq!(sys.hmc().totals().reads, 1);
    }

    #[test]
    fn l1_hits_produce_no_memory_traffic() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let line: Vec<u64> = vec![0x40];
        let mut k = OneShot::new(vec![
            WarpOp::Load(line.clone()),
            WarpOp::Load(line.clone()),
            WarpOp::Load(line),
        ]);
        sys.run_to_completion(&mut k, &mut NeverOffload);
        assert_eq!(sys.hmc().totals().reads, 1, "repeat loads must hit L1");
    }

    #[test]
    fn blocking_atomic_waits_for_response() {
        // CasSmaller returns data: the completion time must include the
        // full round trip, unlike fire-and-forget SignedAdd.
        let run = |op: PimOp| {
            let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
            let ops = (0..64)
                .map(|i| WarpOp::Atomic {
                    op,
                    addrs: vec![i * 4096],
                })
                .collect();
            let mut k = OneShot::new(ops);
            sys.run_to_completion(&mut k, &mut AlwaysOffload);
            sys.stats().end_ps
        };
        let blocking = run(PimOp::CasSmaller);
        let posted = run(PimOp::SignedAdd);
        assert!(
            blocking > posted + 1000,
            "blocking {blocking} should exceed posted {posted}"
        );
    }

    #[test]
    fn stats_count_instruction_mix() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        let mut k = OneShot::new(vec![
            WarpOp::Compute(5),
            WarpOp::Load(vec![0]),
            WarpOp::Store(vec![64]),
            WarpOp::Atomic {
                op: PimOp::SignedAdd,
                addrs: vec![128, 132],
            },
        ]);
        sys.run_to_completion(&mut k, &mut AlwaysOffload);
        let s = sys.stats();
        assert_eq!(s.instructions, 4);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.pim_lane_ops, 2);
        assert_eq!(s.host_lane_ops, 0);
    }

    #[test]
    fn host_atomics_coalesce_to_lines_but_count_lanes() {
        let mut sys = GpuSystem::new(GpuConfig::tiny(), Hmc::hmc20());
        // 4 lanes in the same 64B line.
        let mut k = OneShot::new(vec![WarpOp::Atomic {
            op: PimOp::SignedAdd,
            addrs: vec![0, 16, 32, 48],
        }]);
        sys.run_to_completion(&mut k, &mut NeverOffload);
        assert_eq!(sys.stats().host_lane_ops, 4);
        assert_eq!(sys.hmc().totals().reads, 1, "one line fill for four lanes");
    }
}
