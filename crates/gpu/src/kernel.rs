//! The kernel abstraction workloads implement.
//!
//! A kernel is an *iterative* GPU computation: a sequence of launches
//! (BFS levels, SSSP rounds, PageRank iterations…), each a grid of thread
//! blocks. The engine asks for one [`BlockTrace`] per dispatched block;
//! the kernel runs its algorithm functionally while emitting the trace.
//!
//! `pim_enabled` selects between the PIM-enabled body and the pre-built
//! non-PIM shadow body (§IV-B "Code Generation for Non-PIM Code"). The
//! addresses and control flow are identical — only the atomic encoding
//! differs — so the SW token pool can swap entry points freely.

use crate::isa::BlockTrace;

/// Static per-kernel characteristics used by Eq. 1's PTP initialisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Fraction of dynamic warp instructions that are offloadable atomics
    /// (PIM intensity).
    pub pim_intensity: f64,
    /// Estimated ratio of divergent warps (topology-driven graph kernels
    /// are high; warp-centric ones are low).
    pub divergence_ratio: f64,
}

/// An iterative GPU workload.
pub trait Kernel {
    /// Workload name (used in reports; matches the paper's benchmark
    /// labels, e.g. `bfs-ta`).
    fn name(&self) -> &str;

    /// Number of thread blocks in the *current* launch.
    fn grid_blocks(&self) -> usize;

    /// Warps per block.
    fn warps_per_block(&self) -> usize;

    /// Generates the trace for `block` of the current launch, running the
    /// algorithm functionally. `pim_enabled` selects the PIM body vs the
    /// non-PIM shadow body.
    fn block_trace(&mut self, block: usize, pim_enabled: bool) -> BlockTrace;

    /// Advances to the next launch (e.g. the next BFS level). Returns
    /// `false` when the workload is complete. Called after every block of
    /// the current launch has retired.
    fn next_launch(&mut self) -> bool;

    /// Compile-time profile for the software throttler's static analysis.
    fn profile(&self) -> KernelProfile;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{WarpOp, WarpTrace};

    /// A trivial streaming kernel used by engine unit tests.
    pub struct StreamKernel {
        launches_left: usize,
        blocks: usize,
        warps: usize,
    }

    impl StreamKernel {
        pub fn new(launches: usize, blocks: usize, warps: usize) -> Self {
            Self {
                launches_left: launches,
                blocks,
                warps,
            }
        }
    }

    impl Kernel for StreamKernel {
        fn name(&self) -> &str {
            "stream"
        }
        fn grid_blocks(&self) -> usize {
            self.blocks
        }
        fn warps_per_block(&self) -> usize {
            self.warps
        }
        fn block_trace(&mut self, block: usize, _pim_enabled: bool) -> BlockTrace {
            let base = (block as u64) << 20;
            let warps = (0..self.warps)
                .map(|w| WarpTrace {
                    ops: vec![
                        WarpOp::Load((0..32).map(|l| base + (w as u64) * 2048 + l * 4).collect()),
                        WarpOp::Compute(8),
                    ],
                })
                .collect();
            BlockTrace { warps }
        }
        fn next_launch(&mut self) -> bool {
            self.launches_left = self.launches_left.saturating_sub(1);
            self.launches_left > 0
        }
        fn profile(&self) -> KernelProfile {
            KernelProfile {
                pim_intensity: 0.0,
                divergence_ratio: 0.0,
            }
        }
    }

    #[test]
    fn stream_kernel_emits_expected_shape() {
        let mut k = StreamKernel::new(2, 3, 4);
        assert_eq!(k.grid_blocks(), 3);
        let t = k.block_trace(0, false);
        assert_eq!(t.warp_count(), 4);
        assert_eq!(t.warps[0].ops.len(), 2);
        assert!(k.next_launch());
        assert!(!k.next_launch());
    }
}
