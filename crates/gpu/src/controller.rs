//! The offload-control hook: how CoolPIM's SW/HW throttling plugs into
//! the GPU engine.
//!
//! The engine consults the controller at block-launch time (the SW
//! token-pool granularity) and at every atomic issue (the HW per-warp
//! granularity), and reports thermal warnings observed in HMC response
//! tails. All times are simulation picoseconds.

use coolpim_hmc::Ps;
use coolpim_telemetry::TelemetryEvent;

/// Decides where atomics execute; implemented by `coolpim-core`'s
/// policies (naïve offloading, SW-DynT, HW-DynT) and by the trivial
/// controllers below.
pub trait OffloadController {
    /// A short stable identifier for reports (lockstep divergence output,
    /// experiment tables). Defaults to `"controller"`.
    fn name(&self) -> &'static str {
        "controller"
    }

    /// A thread block is about to launch at `now`. Return `true` to run
    /// the PIM-enabled body, `false` for the non-PIM shadow body.
    fn on_block_launch(&mut self, block_id: usize, now: Ps) -> bool;

    /// A thread block finished at `now`.
    fn on_block_complete(&mut self, block_id: usize, was_pim: bool, now: Ps) {
        let _ = (block_id, was_pim, now);
    }

    /// A PIM-enabled warp on `sm` is about to issue an atomic at `now`.
    /// Return `false` to force the host-atomic path for this instruction
    /// (HW-DynT's per-warp control: `warp_slot` identifies the warp's
    /// residency slot on the SM).
    fn warp_may_offload(&mut self, sm: usize, warp_slot: usize, now: Ps) -> bool {
        let _ = (sm, warp_slot, now);
        true
    }

    /// A response carrying the thermal-warning ERRSTAT arrived at `now`.
    /// Called for every flagged response; implementations debounce.
    /// `warning_id` identifies the cube's warning episode (0 when the
    /// transport carried none) so the action the controller eventually
    /// takes can be causally tied back to the raise in the event stream.
    fn on_thermal_warning(&mut self, now: Ps, warning_id: u64) {
        let _ = (now, warning_id);
    }

    /// Periodic thermal telemetry from the co-simulation driver: the peak
    /// DRAM temperature and the warning threshold at epoch boundaries.
    /// Extensions (e.g. graduated multi-level warnings) use this to grade
    /// their response; the base controllers ignore it.
    fn on_thermal_reading(&mut self, peak_dram_c: f64, threshold_c: f64, now: Ps) {
        let _ = (peak_dram_c, threshold_c, now);
    }

    /// Moves any control-action telemetry the controller buffered (token
    /// pool resizes, warp-cap updates, accepted warnings) into `out`.
    /// The co-simulation driver calls this at epoch boundaries; trivial
    /// controllers have nothing to report.
    fn drain_control_events(&mut self, out: &mut Vec<TelemetryEvent>) {
        let _ = out;
    }
}

/// Offload every atomic (the paper's naïve-offloading configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysOffload;

impl OffloadController for AlwaysOffload {
    fn name(&self) -> &'static str {
        "always-offload"
    }

    fn on_block_launch(&mut self, _block_id: usize, _now: Ps) -> bool {
        true
    }
}

/// Never offload (the non-offloading baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverOffload;

impl OffloadController for NeverOffload {
    fn name(&self) -> &'static str {
        "never-offload"
    }

    fn on_block_launch(&mut self, _block_id: usize, _now: Ps) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_controllers() {
        let mut a = AlwaysOffload;
        let mut n = NeverOffload;
        assert!(a.on_block_launch(0, 0));
        assert!(!n.on_block_launch(0, 0));
        assert!(a.warp_may_offload(0, 0, 0));
        assert_eq!(a.name(), "always-offload");
        assert_eq!(n.name(), "never-offload");
        // Default hooks are no-ops.
        a.on_block_complete(0, true, 10);
        a.on_thermal_warning(10, 1);
    }
}
