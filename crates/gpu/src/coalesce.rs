//! The 32-lane memory coalescer: per-lane addresses collapse into unique
//! 64-byte block transactions.

/// Block size the coalescer works at (matches cache lines and the HMC
/// transaction size).
pub const COALESCE_BYTES: u64 = 64;

/// Collapses per-lane addresses into unique block addresses, preserving
/// first-touch order. The scratch vector is caller-provided so hot loops
/// don't allocate.
pub fn coalesce_into(addrs: &[u64], out: &mut Vec<u64>) {
    out.clear();
    for &a in addrs {
        let block = a & !(COALESCE_BYTES - 1);
        // Warp-width vectors are ≤32 long and usually collapse to a
        // handful of blocks: linear scan beats hashing here.
        if !out.contains(&block) {
            out.push(block);
        }
    }
}

/// Allocating convenience wrapper around [`coalesce_into`].
pub fn coalesce(addrs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(4);
    coalesce_into(addrs, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_warp_access_collapses_to_two_blocks() {
        // 32 lanes × 4-byte elements starting at 0 → 128 bytes → 2 blocks.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(coalesce(&addrs), vec![0, 64]);
    }

    #[test]
    fn scattered_access_stays_scattered() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        assert_eq!(coalesce(&addrs).len(), 32);
    }

    #[test]
    fn duplicate_lanes_collapse() {
        let addrs = vec![100, 100, 101, 160];
        assert_eq!(coalesce(&addrs), vec![64, 128]);
    }

    #[test]
    fn empty_input_gives_no_transactions() {
        assert!(coalesce(&[]).is_empty());
    }
}
