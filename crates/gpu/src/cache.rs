//! Timing-only set-associative cache with LRU replacement and dirty-line
//! tracking (for writeback traffic accounting).

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was filled; if the victim was dirty, its block address is
    /// returned so the caller can issue a writeback.
    Miss {
        /// Block address of a dirty victim that must be written back.
        writeback: Option<u64>,
    },
}

impl CacheOutcome {
    /// True on hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger = more recent.
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache model.
///
/// Only tags are tracked — this is a timing/traffic model, not a
/// functional cache.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `total_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    /// Panics unless the geometry divides evenly and sizes are powers of
    /// two where required.
    pub fn new(total_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways >= 1 && line_bytes.is_power_of_two());
        let lines_total = total_bytes / line_bytes;
        assert!(lines_total >= ways, "cache smaller than one set");
        let sets = lines_total / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets,
            ways,
            line_bytes: line_bytes as u64,
            lines: vec![Line::default(); sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheOutcome {
        self.tick += 1;
        let block = addr / self.line_bytes;
        let set = (block as usize) & (self.sets - 1);
        let tag = block >> self.sets.trailing_zeros();
        let base = set * self.ways;
        // Hit?
        for way in 0..self.ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= write;
                self.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        // Miss: fill into invalid or LRU way.
        self.misses += 1;
        let mut victim = base;
        let mut best = u64::MAX;
        for way in 0..self.ways {
            let line = &self.lines[base + way];
            if !line.valid {
                victim = base + way;
                break;
            }
            if line.lru < best {
                best = line.lru;
                victim = base + way;
            }
        }
        let old = self.lines[victim];
        let writeback = (old.valid && old.dirty).then(|| {
            let victim_block = (old.tag << self.sets.trailing_zeros()) | set as u64;
            victim_block * self.line_bytes
        });
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        CacheOutcome::Miss { writeback }
    }

    /// Invalidates everything (kernel boundary, context switch).
    pub fn flush(&mut self) -> Vec<u64> {
        let mut writebacks = Vec::new();
        for set in 0..self.sets {
            for way in 0..self.ways {
                let line = &mut self.lines[set * self.ways + way];
                if line.valid && line.dirty {
                    let block = (line.tag << self.sets.trailing_zeros()) | set as u64;
                    writebacks.push(block * self.line_bytes);
                }
                *line = Line::default();
            }
        }
        writebacks
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in [0, 1]; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits() {
        let mut c = Cache::new(4096, 4, 64);
        assert!(!c.access(0x100, false).is_hit());
        assert!(c.access(0x100, false).is_hit());
        assert!(c.access(0x13f, false).is_hit()); // same 64-byte line
        assert!(!c.access(0x140, false).is_hit()); // next line
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        // Direct-ish: 2 ways, force 3 conflicting lines into one set.
        let sets = 4096 / (2 * 64);
        let mut c = Cache::new(4096, 2, 64);
        let stride = (sets * 64) as u64;
        assert_eq!(c.access(0, true), CacheOutcome::Miss { writeback: None });
        assert_eq!(
            c.access(stride, false),
            CacheOutcome::Miss { writeback: None }
        );
        // Third conflicting access evicts the LRU (the dirty line at 0).
        match c.access(2 * stride, false) {
            CacheOutcome::Miss {
                writeback: Some(addr),
            } => assert_eq!(addr, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let sets = 4096 / (2 * 64);
        let stride = (sets * 64) as u64;
        let mut c = Cache::new(4096, 2, 64);
        c.access(0, false);
        c.access(stride, false);
        c.access(0, false); // refresh line 0
        c.access(2 * stride, false); // evicts `stride`, not 0
        assert!(c.access(0, false).is_hit());
        assert!(!c.access(stride, false).is_hit());
    }

    #[test]
    fn flush_returns_dirty_lines_and_clears() {
        let mut c = Cache::new(4096, 4, 64);
        c.access(0x000, true);
        c.access(0x040, false);
        c.access(0x080, true);
        let mut wb = c.flush();
        wb.sort_unstable();
        assert_eq!(wb, vec![0x000, 0x080]);
        assert!(!c.access(0x000, false).is_hit());
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let mut c = Cache::new(4096, 4, 64);
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        let (h, m) = c.stats();
        assert_eq!((h, m), (1, 2));
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
