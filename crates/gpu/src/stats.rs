//! Run statistics of the GPU engine.

use coolpim_hmc::Ps;

/// Cumulative counters of one kernel run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuStats {
    /// Warp instructions issued.
    pub instructions: u64,
    /// Load instructions issued.
    pub loads: u64,
    /// Store instructions issued.
    pub stores: u64,
    /// Atomic lane-operations offloaded as PIM instructions.
    pub pim_lane_ops: u64,
    /// Atomic lane-operations executed on the host (L2) path.
    pub host_lane_ops: u64,
    /// Thread blocks launched with the PIM-enabled body.
    pub pim_blocks: u64,
    /// Thread blocks launched with the non-PIM shadow body.
    pub non_pim_blocks: u64,
    /// Kernel launches executed.
    pub launches: u64,
    /// Thermal-warning-flagged responses observed.
    pub warnings_seen: u64,
    /// Completion time of the whole workload (ps); 0 until finished.
    pub end_ps: Ps,
}

impl GpuStats {
    /// Fraction of atomic lane-operations that went to PIM.
    pub fn offload_fraction(&self) -> f64 {
        let total = self.pim_lane_ops + self.host_lane_ops;
        if total == 0 {
            0.0
        } else {
            self.pim_lane_ops as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_fraction_handles_zero() {
        let s = GpuStats::default();
        assert_eq!(s.offload_fraction(), 0.0);
        let s2 = GpuStats {
            pim_lane_ops: 3,
            host_lane_ops: 1,
            ..Default::default()
        };
        assert!((s2.offload_fraction() - 0.75).abs() < 1e-12);
    }
}
