//! # coolpim-gpu
//!
//! A discrete-event GPU timing model for PIM-offloading studies, standing
//! in for the MacSim cycle-level simulator used by the CoolPIM paper.
//!
//! The model executes *kernel traces*: workloads (see `coolpim-graph`)
//! run their algorithms functionally while emitting per-warp instruction
//! streams — compute bursts, coalesced loads/stores, and atomic
//! operations that may be offloaded as HMC PIM instructions. The engine
//! schedules warps across SMs with a global event heap, moves memory
//! traffic through per-SM L1Ds and a shared L2, and submits misses to the
//! `coolpim-hmc` cube model, from whose response tails thermal warnings
//! propagate back to the offloading controller.
//!
//! Table IV configuration: 16 PTX SMs, 32 threads/warp, 1.4 GHz, 16 KB
//! private L1D, 1 MB 16-way L2.
//!
//! Modules:
//!
//! * [`config`] — the host configuration,
//! * [`isa`] — the abstract warp-level instruction stream,
//! * [`kernel`] — the trait workloads implement,
//! * [`cache`] — set-associative L1/L2 with dirty-eviction accounting,
//! * [`coalesce`] — the 32-lane memory coalescer,
//! * [`controller`] — the offload-control hook CoolPIM's policies implement,
//! * [`system`] — the assembled GPU + HMC system and its event engine,
//! * [`stats`] — run statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod config;
pub mod controller;
pub mod isa;
pub mod kernel;
pub mod stats;
pub mod system;

pub use config::GpuConfig;
pub use controller::{AlwaysOffload, NeverOffload, OffloadController};
pub use isa::{BlockTrace, WarpOp, WarpTrace};
pub use kernel::Kernel;
pub use system::{GpuSystem, RunOutcome};
