//! Host GPU configuration (Table IV).

use coolpim_hmc::{ns_to_ps, Ps};

/// Static configuration of the host GPU.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (16).
    pub sms: usize,
    /// Threads per warp (32).
    pub threads_per_warp: usize,
    /// Core clock in Hz (1.4 GHz).
    pub clock_hz: f64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// L1D size per SM in bytes (16 KB).
    pub l1_bytes: usize,
    /// L1D associativity.
    pub l1_ways: usize,
    /// L2 size in bytes (1 MB).
    pub l2_bytes: usize,
    /// L2 associativity (16).
    pub l2_ways: usize,
    /// Cache line size in bytes (matches the HMC 64-byte block).
    pub line_bytes: usize,
    /// L1 hit latency in core cycles.
    pub l1_hit_cycles: u32,
    /// L2 hit latency in core cycles (beyond L1).
    pub l2_hit_cycles: u32,
    /// Issue cost of a fire-and-forget memory op in cycles.
    pub store_issue_cycles: u32,
    /// Kernel launch overhead between successive launches (ps).
    pub launch_overhead: Ps,
}

impl GpuConfig {
    /// Table IV host configuration.
    pub fn paper() -> Self {
        Self {
            sms: 16,
            threads_per_warp: 32,
            clock_hz: 1.4e9,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 6,
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l2_bytes: 1024 * 1024,
            l2_ways: 16,
            line_bytes: 64,
            l1_hit_cycles: 28,
            l2_hit_cycles: 66,
            store_issue_cycles: 4,
            launch_overhead: ns_to_ps(5_000.0),
        }
    }

    /// A small configuration for fast unit tests (4 SMs, small caches).
    pub fn tiny() -> Self {
        Self {
            sms: 4,
            max_warps_per_sm: 16,
            max_blocks_per_sm: 4,
            l1_bytes: 4 * 1024,
            l2_bytes: 64 * 1024,
            ..Self::paper()
        }
    }

    /// Core cycle time in picoseconds.
    pub fn cycle_ps(&self) -> Ps {
        (1e12 / self.clock_hz).round() as Ps
    }

    /// Picoseconds for `cycles` core cycles.
    pub fn cycles_ps(&self, cycles: u32) -> Ps {
        u64::from(cycles) * self.cycle_ps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_host_parameters() {
        let c = GpuConfig::paper();
        assert_eq!(c.sms, 16);
        assert_eq!(c.threads_per_warp, 32);
        assert_eq!(c.l1_bytes, 16 * 1024);
        assert_eq!(c.l2_bytes, 1024 * 1024);
        assert_eq!(c.l2_ways, 16);
        assert!((c.clock_hz - 1.4e9).abs() < 1.0);
    }

    #[test]
    fn cycle_time_is_714ps() {
        assert_eq!(GpuConfig::paper().cycle_ps(), 714);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn tiny_config_is_strictly_smaller() {
        let t = GpuConfig::tiny();
        let p = GpuConfig::paper();
        assert!(t.sms < p.sms);
        assert!(t.l2_bytes < p.l2_bytes);
        assert_eq!(t.threads_per_warp, p.threads_per_warp);
    }

    #[test]
    fn cycles_ps_scales_linearly() {
        let c = GpuConfig::paper();
        assert_eq!(c.cycles_ps(10), 10 * c.cycle_ps());
        assert_eq!(c.cycles_ps(0), 0);
    }
}
