//! The abstract warp-level instruction stream executed by the engine.
//!
//! Workloads compile to sequences of [`WarpOp`]s per warp. Compute work
//! between memory operations is fused into single `Compute` bursts; memory
//! operations carry the per-lane addresses of the *active* lanes, so
//! divergence shows up as short address vectors.

use coolpim_hmc::PimOp;

/// One warp-level operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpOp {
    /// A burst of ALU/control work lasting this many core cycles.
    Compute(u32),
    /// A global load; one address per active lane. The warp blocks until
    /// the data returns.
    Load(Vec<u64>),
    /// A global store; fire-and-forget past request acceptance.
    Store(Vec<u64>),
    /// An atomic read-modify-write per active lane. Offloadable to a PIM
    /// instruction when the warp/block is PIM-enabled; otherwise executed
    /// as a host atomic at the L2.
    Atomic {
        /// Which RMW operation.
        op: PimOp,
        /// Per-active-lane target addresses.
        addrs: Vec<u64>,
    },
}

impl WarpOp {
    /// Number of active lanes touching memory (0 for compute).
    pub fn active_lanes(&self) -> usize {
        match self {
            WarpOp::Compute(_) => 0,
            WarpOp::Load(a) | WarpOp::Store(a) => a.len(),
            WarpOp::Atomic { addrs, .. } => addrs.len(),
        }
    }

    /// Whether this op is an offloadable atomic.
    pub fn is_atomic(&self) -> bool {
        matches!(self, WarpOp::Atomic { .. })
    }
}

/// The instruction stream of one warp.
#[derive(Debug, Clone, Default)]
pub struct WarpTrace {
    /// Operations in program order.
    pub ops: Vec<WarpOp>,
}

impl WarpTrace {
    /// Count of atomic lane-operations in this trace (one per active lane
    /// of each atomic instruction).
    pub fn atomic_lane_ops(&self) -> u64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                WarpOp::Atomic { addrs, .. } => Some(addrs.len() as u64),
                _ => None,
            })
            .sum()
    }

    /// Total warp instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The instruction streams of all warps of one thread block.
#[derive(Debug, Clone, Default)]
pub struct BlockTrace {
    /// One trace per warp.
    pub warps: Vec<WarpTrace>,
}

impl BlockTrace {
    /// Number of warps.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_lane_accounting() {
        assert_eq!(WarpOp::Compute(10).active_lanes(), 0);
        assert_eq!(WarpOp::Load(vec![0, 64, 128]).active_lanes(), 3);
        let a = WarpOp::Atomic {
            op: PimOp::SignedAdd,
            addrs: vec![0; 32],
        };
        assert_eq!(a.active_lanes(), 32);
        assert!(a.is_atomic());
    }

    #[test]
    fn atomic_lane_ops_counts_lanes_not_instructions() {
        let t = WarpTrace {
            ops: vec![
                WarpOp::Atomic {
                    op: PimOp::SignedAdd,
                    addrs: vec![0, 8],
                },
                WarpOp::Compute(5),
                WarpOp::Atomic {
                    op: PimOp::CasGreater,
                    addrs: vec![16],
                },
            ],
        };
        assert_eq!(t.atomic_lane_ops(), 3);
        assert_eq!(t.len(), 3);
    }
}
