//! Cooling solutions: Table II of the CoolPIM paper plus a fan-curve model.
//!
//! | Type                        | Thermal resistance | Cooling power |
//! |-----------------------------|--------------------|---------------|
//! | Passive heat sink           | 4.0 °C/W           | 0             |
//! | Low-end active heat sink    | 2.0 °C/W           | 1×            |
//! | Commodity-server active     | 0.5 °C/W           | 104×          |
//! | High-end active heat sink   | 0.2 °C/W           | 380×          |
//!
//! The paper reports a high-end plate-fin fan consuming ≈13 W; with a 380×
//! relative figure this pins the 1× unit at 0.035 W, which we adopt.

/// Fan power of the low-end active heat sink (the paper's "1×" unit), in
/// Watts. Chosen so the 380× high-end sink consumes ≈13.3 W, matching the
/// "around 13 Watt" figure in §III-B of the paper.
pub const FAN_POWER_UNIT_W: f64 = 0.035;

/// The four cooling solutions evaluated by the paper (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cooling {
    /// Passive plate-fin heat sink, 4.0 °C/W, no fan.
    Passive,
    /// Low-end active heat sink, 2.0 °C/W, 1× fan power.
    LowEndActive,
    /// Commodity-server active heat sink, 0.5 °C/W, 104× fan power.
    CommodityServer,
    /// High-end active heat sink, 0.2 °C/W, 380× fan power (~13 W).
    HighEndActive,
    /// A custom sink with an arbitrary sink-to-ambient resistance (°C/W).
    /// Fan power is estimated from the fan-curve model.
    Custom {
        /// Sink-to-ambient thermal resistance in °C/W.
        resistance: u32,
    },
}

impl Cooling {
    /// All four paper cooling types, in Table II order.
    pub const TABLE2: [Cooling; 4] = [
        Cooling::Passive,
        Cooling::LowEndActive,
        Cooling::CommodityServer,
        Cooling::HighEndActive,
    ];

    /// Sink-to-ambient thermal resistance in °C/W.
    pub fn resistance_c_per_w(self) -> f64 {
        match self {
            Cooling::Passive => 4.0,
            Cooling::LowEndActive => 2.0,
            Cooling::CommodityServer => 0.5,
            Cooling::HighEndActive => 0.2,
            Cooling::Custom { resistance } => f64::from(resistance) * 1e-3,
        }
    }

    /// Fan (cooling) power relative to the low-end active heat sink.
    pub fn fan_power_relative(self) -> f64 {
        match self {
            Cooling::Passive => 0.0,
            Cooling::LowEndActive => 1.0,
            Cooling::CommodityServer => 104.0,
            Cooling::HighEndActive => 380.0,
            Cooling::Custom { .. } => {
                FanCurve::PAPER.fan_power_w(self.resistance_c_per_w()) / FAN_POWER_UNIT_W
            }
        }
    }

    /// Absolute fan power in Watts.
    pub fn fan_power_w(self) -> f64 {
        self.fan_power_relative() * FAN_POWER_UNIT_W
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Cooling::Passive => "Passive",
            Cooling::LowEndActive => "Low-end",
            Cooling::CommodityServer => "Commodity",
            Cooling::HighEndActive => "High-end",
            Cooling::Custom { .. } => "Custom",
        }
    }
}

/// Fan-curve extrapolation model (Stein & Hydeman-style characteristic
/// curve, as cited by the paper for its fan-power estimates).
///
/// Fan affinity laws give airflow ∝ rpm and fan power ∝ rpm³, while the
/// convective resistance of a plate-fin sink falls roughly with
/// flow^0.8 — combining, `P_fan ≈ c · R^(-3/0.8)`. The exponent is fit to
/// Table II's (2.0 °C/W, 1×) and (0.5 °C/W, 104×) points, yielding ≈3.35,
/// and validated against the 380× high-end point.
#[derive(Debug, Clone, Copy)]
pub struct FanCurve {
    /// Reference resistance where fan power equals `power_at_ref_w`.
    pub ref_resistance: f64,
    /// Fan power at the reference resistance, in Watts.
    pub power_at_ref_w: f64,
    /// Power-law exponent.
    pub exponent: f64,
}

impl FanCurve {
    /// Fan curve fit to the paper's Table II points.
    pub const PAPER: FanCurve = FanCurve {
        ref_resistance: 2.0,
        power_at_ref_w: FAN_POWER_UNIT_W,
        exponent: 3.35,
    };

    /// Fan power (W) required to realise a sink resistance of `r` °C/W.
    ///
    /// Resistances at or above the passive sink need no fan.
    pub fn fan_power_w(&self, r: f64) -> f64 {
        assert!(r > 0.0, "thermal resistance must be positive");
        if r >= Cooling::Passive.resistance_c_per_w() {
            return 0.0;
        }
        self.power_at_ref_w * (self.ref_resistance / r).powf(self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_resistances() {
        let r: Vec<f64> = Cooling::TABLE2
            .iter()
            .map(|c| c.resistance_c_per_w())
            .collect();
        assert_eq!(r, vec![4.0, 2.0, 0.5, 0.2]);
    }

    #[test]
    fn table2_fan_power_ratios() {
        assert_eq!(Cooling::Passive.fan_power_relative(), 0.0);
        assert_eq!(Cooling::LowEndActive.fan_power_relative(), 1.0);
        assert_eq!(Cooling::CommodityServer.fan_power_relative(), 104.0);
        assert_eq!(Cooling::HighEndActive.fan_power_relative(), 380.0);
    }

    #[test]
    fn high_end_fan_is_about_13_watts() {
        let p = Cooling::HighEndActive.fan_power_w();
        assert!(
            (12.0..15.0).contains(&p),
            "high-end fan power {p} W not ≈13 W"
        );
    }

    #[test]
    fn fan_curve_reproduces_commodity_point_approximately() {
        // 0.5 °C/W should land in the same decade as the 104× table entry.
        let rel = FanCurve::PAPER.fan_power_w(0.5) / FAN_POWER_UNIT_W;
        assert!((50.0..250.0).contains(&rel), "relative fan power {rel}");
    }

    #[test]
    fn fan_curve_is_monotonic_in_resistance() {
        let mut last = f64::INFINITY;
        for r in [0.1, 0.2, 0.5, 1.0, 2.0, 3.0] {
            let p = FanCurve::PAPER.fan_power_w(r);
            assert!(p < last, "fan power must fall as resistance rises");
            last = p;
        }
    }

    #[test]
    fn passive_needs_no_fan() {
        assert_eq!(FanCurve::PAPER.fan_power_w(4.0), 0.0);
        assert_eq!(FanCurve::PAPER.fan_power_w(5.0), 0.0);
    }

    #[test]
    fn custom_cooling_resistance_is_millidegrees() {
        let c = Cooling::Custom { resistance: 270 };
        assert!((c.resistance_c_per_w() - 0.27).abs() < 1e-12);
    }
}
