//! Steady-state and transient solvers for the RC thermal network.
//!
//! * [`steady_state`] / [`try_steady_state_into`] solve `G·T = P` with
//!   red-black successive over-relaxation (the network's conductance
//!   matrix is symmetric diagonally dominant, so SOR converges for
//!   0 < ω < 2 in any sweep order; the red-black order propagates fresh
//!   values colour-to-colour and is precomputed by the grid so a solve
//!   allocates nothing beyond its output buffer).
//! * [`TransientState`] advances `C·dT/dt = P − G·T` with **backward
//!   Euler**: each sub-step solves the implicit system with red-black
//!   over-relaxed Gauss–Seidel warm-started from the previous field.
//!   Backward Euler is unconditionally stable, so sub-step length is
//!   chosen for accuracy of the millisecond-scale modes rather than for
//!   stability of the microsecond cell modes — this is what makes
//!   multi-millisecond co-simulation windows cheap.
//!
//! Two structural optimisations keep the transient inner solve off the
//! co-simulation's critical path:
//!
//! 1. **Per-sub-step precompute.** The implicit system's right-hand side
//!    and diagonal are constant within a sub-step, so they are built once
//!    (`rhs`, `inv_diag`) instead of being re-derived — two divisions per
//!    node — on every sweep.
//! 2. **Settled-state fast paths.** When a sub-step converges on its
//!    first sweep the field is stationary under the current power, so the
//!    remaining sub-steps of the epoch are skipped; and when the next
//!    epoch arrives with a power vector unchanged within
//!    [`POWER_MATCH_REL_TOL`], the whole implicit solve is skipped
//!    ([`TransientSolverStats::fast_path_hits`]). Idle and steady-tail
//!    phases of a run cost zero sweeps.
//!
//! Every solve reports its work through [`SolveStats`] /
//! [`TransientSolverStats`] so convergence behaviour is visible in run
//! records, and non-convergence surfaces as a typed [`NonConvergence`]
//! error carrying the final residual instead of a bare panic.
//!
//! Temperatures returned are absolute °C.

use coolpim_telemetry::{Histogram, TraceTrack};

use crate::grid::ThermalGrid;

/// SOR relaxation factor for the steady-state solve.
const SOR_OMEGA: f64 = 1.92;
/// Steady-state convergence threshold (max |ΔT| per sweep, °C).
const SS_TOLERANCE: f64 = 1e-7;
/// Steady-state iteration cap.
const SS_MAX_SWEEPS: usize = 60_000;
/// Transient inner-solve convergence threshold (°C).
const TR_TOLERANCE: f64 = 1e-6;
/// Transient inner-solve sweep cap per sub-step.
const TR_MAX_SWEEPS: usize = 2_000;
/// Over-relaxation factor for the transient inner solve, tuned
/// empirically with the `bench` bin's scripted co-sim sequence (see
/// BENCH_5.json): sweeps-per-substep bottoms out near 1.72 — below the
/// steady solve's 1.92 because the capacitive term `C/h` shifts the
/// implicit matrix's spectrum — and climbs steeply past ~1.9.
const TR_OMEGA: f64 = 1.72;
/// Relative per-node tolerance under which two power vectors count as
/// unchanged for the epoch fast path.
pub const POWER_MATCH_REL_TOL: f64 = 1e-9;
/// Absolute floor (W) of the power-match comparison, so exactly-idle
/// nodes compare equal against denormal noise.
const POWER_MATCH_ABS_TOL_W: f64 = 1e-12;

/// Work report of one converged solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Gauss–Seidel sweeps performed.
    pub sweeps: usize,
    /// Final per-sweep residual (max |ΔT| of the last sweep, °C).
    pub residual_c: f64,
}

/// A solve that hit its sweep cap before reaching tolerance.
///
/// Carries the diagnostics a caller needs to report the failure usefully:
/// how many sweeps ran, how far from stationary the field still was, and
/// what the target was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonConvergence {
    /// Sweeps performed before giving up.
    pub sweeps: usize,
    /// Residual at the final sweep (max |ΔT|, °C).
    pub residual_c: f64,
    /// The convergence threshold that was not reached (°C).
    pub tolerance_c: f64,
}

impl std::fmt::Display for NonConvergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solve did not converge after {} sweeps (residual {:.3e} °C, tolerance {:.1e} °C)",
            self.sweeps, self.residual_c, self.tolerance_c
        )
    }
}

impl std::error::Error for NonConvergence {}

/// Solves the steady-state temperature field for `power` (W per node) at
/// the given ambient temperature (°C). Returns one temperature per node.
///
/// Convenience wrapper over [`try_steady_state_into`] for callers that
/// solve rarely; hot paths should reuse an output buffer instead.
///
/// # Panics
/// Panics if `power.len()` does not match the grid's node count, or if the
/// solve fails to converge (which would indicate a malformed network).
pub fn steady_state(grid: &ThermalGrid, power: &[f64], ambient_c: f64) -> Vec<f64> {
    let mut out = Vec::new();
    match try_steady_state_into(grid, power, ambient_c, &mut out) {
        Ok(_) => out,
        Err(e) => panic!("steady-state solve did not converge: {e}"),
    }
}

/// Solves the steady state into `out` (cleared and resized to the node
/// count — an already-sized buffer is reused without allocating) and
/// reports the sweeps spent and the final residual.
///
/// # Panics
/// Panics if `power.len()` does not match the grid's node count.
pub fn try_steady_state_into(
    grid: &ThermalGrid,
    power: &[f64],
    ambient_c: f64,
    out: &mut Vec<f64>,
) -> Result<SolveStats, NonConvergence> {
    try_steady_state_capped(grid, power, ambient_c, out, SS_MAX_SWEEPS)
}

/// [`try_steady_state_into`] with an explicit sweep cap (diagnostics,
/// tests, and callers that prefer a bounded partial solve over waiting
/// out the default cap).
pub fn try_steady_state_capped(
    grid: &ThermalGrid,
    power: &[f64],
    ambient_c: f64,
    out: &mut Vec<f64>,
    max_sweeps: usize,
) -> Result<SolveStats, NonConvergence> {
    assert_eq!(
        power.len(),
        grid.node_count(),
        "power vector length mismatch"
    );
    let n = grid.node_count();
    let g_total = grid.g_total();
    let order = grid.rb_order();
    // Solve for temperature *rise* over ambient; the ambient boundary term
    // vanishes in rise coordinates.
    out.clear();
    out.resize(n, 0.0);
    let mut sweeps = 0;
    let mut last_delta = f64::INFINITY;
    while sweeps < max_sweeps {
        sweeps += 1;
        let mut max_delta: f64 = 0.0;
        for &ni in order {
            let i = ni as usize;
            let mut acc = power[i];
            for (nb, g) in grid.neighbours(i) {
                acc += g * out[nb];
            }
            debug_assert!(g_total[i] > 0.0);
            let fresh = acc / g_total[i];
            let updated = out[i] + SOR_OMEGA * (fresh - out[i]);
            max_delta = max_delta.max((updated - out[i]).abs());
            out[i] = updated;
        }
        last_delta = max_delta;
        if max_delta < SS_TOLERANCE {
            for v in out.iter_mut() {
                *v += ambient_c;
            }
            return Ok(SolveStats {
                sweeps,
                residual_c: max_delta,
            });
        }
    }
    Err(NonConvergence {
        sweeps,
        residual_c: last_delta,
        tolerance_c: SS_TOLERANCE,
    })
}

/// Cumulative work counters of a [`TransientState`] — the telemetry the
/// co-simulator folds into its metrics so convergence improvements show
/// up in run records.
#[derive(Debug, Clone, Default)]
pub struct TransientSolverStats {
    /// Implicit sub-steps actually solved.
    pub substeps: u64,
    /// Total Gauss–Seidel sweeps across all solved sub-steps.
    pub sweeps: u64,
    /// Whole [`TransientState::step`] calls skipped because the field was
    /// settled and the power vector was unchanged within tolerance.
    pub fast_path_hits: u64,
    /// Sub-steps skipped after the field went stationary mid-step.
    pub skipped_substeps: u64,
    /// Distribution of sweeps per solved sub-step.
    pub sweep_hist: Histogram,
}

impl TransientSolverStats {
    /// Mean sweeps per solved sub-step (0 when nothing was solved).
    pub fn sweeps_per_substep(&self) -> f64 {
        if self.substeps == 0 {
            0.0
        } else {
            self.sweeps as f64 / self.substeps as f64
        }
    }
}

/// The swappable transient-solver interface: everything the
/// [`crate::model::HmcThermalModel`] façade (and through it the
/// co-simulator) needs from a thermal integrator.
///
/// Two implementations ship: the optimized [`TransientState`] (red-black
/// over-relaxed Gauss–Seidel with per-sub-step precompute and settled
/// fast paths) and the canonical reference
/// [`crate::reference::ReferenceTransient`] (the pre-optimisation plain
/// Gauss–Seidel solver, promoted out of the bench harness). The
/// `coolpim-validate` lockstep oracle runs any two implementations side
/// by side and reports their first divergence; aggressive solver
/// rewrites plug in here and are proven equivalent before they replace
/// the default.
pub trait ThermalSolve {
    /// Implementation label for lockstep reports and logs.
    fn name(&self) -> &'static str;

    /// Current node temperatures (absolute °C).
    fn temps(&self) -> &[f64];

    /// Ambient temperature (°C).
    fn ambient_c(&self) -> f64;

    /// The capacitance scale the state was created with.
    fn c_scale(&self) -> f64;

    /// Cumulative solver work counters since construction or the last
    /// [`ThermalSolve::reset`].
    fn solver_stats(&self) -> &TransientSolverStats;

    /// Advances the field by `dt` seconds under constant `power`
    /// (W/node), internally sub-stepping as the implementation sees fit.
    fn step(&mut self, grid: &ThermalGrid, power: &[f64], dt: f64);

    /// [`ThermalSolve::step`] with an optional trace track: when `trace`
    /// is set, implementations may emit per-sub-step timeline spans so a
    /// Perfetto timeline shows where inside a solve epoch time goes. The
    /// default ignores the track and just steps, so alternative solvers
    /// (the lockstep reference, future rewrites) stay correct without
    /// instrumenting anything.
    fn step_traced(
        &mut self,
        grid: &ThermalGrid,
        power: &[f64],
        dt: f64,
        trace: Option<&mut TraceTrack>,
    ) {
        let _ = trace;
        self.step(grid, power, dt);
    }

    /// Overwrites the field with a steady-state solution for `power`,
    /// reporting the solve's work. On failure the field holds the
    /// partial solution.
    fn try_jump_to_steady_state(
        &mut self,
        grid: &ThermalGrid,
        power: &[f64],
    ) -> Result<SolveStats, NonConvergence>;

    /// Returns every node to ambient and clears the work counters.
    fn reset(&mut self);
}

/// Transient temperature state advanced with backward Euler.
#[derive(Debug, Clone)]
pub struct TransientState {
    /// Absolute node temperatures (°C).
    temps: Vec<f64>,
    /// Ambient temperature (°C).
    ambient_c: f64,
    /// Capacitance scale: <1 accelerates the plant uniformly. The CoolPIM
    /// reproduction calibrates this so the cube-level time constant
    /// matches the paper's ~1 ms thermal response (Fig. 8); `1.0` keeps
    /// physical capacitances.
    c_scale: f64,
    /// Longest sub-step taken by [`TransientState::step`] (s).
    max_substep_s: f64,
    /// Scratch buffer for the previous field within a sub-step.
    prev: Vec<f64>,
    /// Per-sub-step right-hand side, rebuilt once per sub-step (not per
    /// sweep).
    rhs: Vec<f64>,
    /// `C·c_scale/h` per node, valid for `diag_h`.
    c_over_h: Vec<f64>,
    /// `1 / (C·c_scale/h + G_total)` per node, valid for `diag_h`.
    inv_diag: Vec<f64>,
    /// Sub-step length the diagonal scratch was built for (s).
    diag_h: f64,
    /// Power vector of the last completed step/jump (fast-path key).
    last_power: Vec<f64>,
    /// Whether the field is stationary under `last_power`.
    settled: bool,
    /// Cumulative solver work counters.
    stats: TransientSolverStats,
}

impl TransientState {
    /// Creates a transient state with every node at ambient.
    ///
    /// The sub-step bound is set to 1/20 of the scaled sink time constant,
    /// which resolves the dynamics the CoolPIM control loop reacts to.
    pub fn new(grid: &ThermalGrid, ambient_c: f64, c_scale: f64) -> Self {
        assert!(c_scale > 0.0);
        let sink = grid.sink_node();
        let sink_tau = c_scale * grid.capacitance()[sink] / grid.g_ambient()[sink];
        let n = grid.node_count();
        Self {
            temps: vec![ambient_c; n],
            ambient_c,
            c_scale,
            max_substep_s: (sink_tau / 20.0).max(1e-9),
            prev: vec![ambient_c; n],
            rhs: vec![0.0; n],
            c_over_h: Vec::new(),
            inv_diag: Vec::new(),
            diag_h: 0.0,
            last_power: Vec::new(),
            settled: false,
            stats: TransientSolverStats::default(),
        }
    }

    /// Ambient temperature (°C).
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Current node temperatures (absolute °C).
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// The capacitance scale this state was created with.
    pub fn c_scale(&self) -> f64 {
        self.c_scale
    }

    /// Cumulative solver work counters since construction.
    pub fn solver_stats(&self) -> &TransientSolverStats {
        &self.stats
    }

    /// Overwrites the state with a steady-state solution for `power`.
    ///
    /// # Panics
    /// Panics on non-convergence; use
    /// [`TransientState::try_jump_to_steady_state`] where the caller wants
    /// the diagnostics instead.
    pub fn jump_to_steady_state(&mut self, grid: &ThermalGrid, power: &[f64]) {
        if let Err(e) = self.try_jump_to_steady_state(grid, power) {
            panic!("steady-state solve did not converge: {e}");
        }
    }

    /// Overwrites the state with a steady-state solution for `power`,
    /// reporting the solve's sweep count and residual. On failure the
    /// error carries the final residual; the field then holds the partial
    /// (non-converged) solution.
    ///
    /// A successful jump marks the field settled for `power`, so a
    /// following [`TransientState::step`] under the same power takes the
    /// fast path.
    pub fn try_jump_to_steady_state(
        &mut self,
        grid: &ThermalGrid,
        power: &[f64],
    ) -> Result<SolveStats, NonConvergence> {
        let mut out = std::mem::take(&mut self.temps);
        let res = try_steady_state_into(grid, power, self.ambient_c, &mut out);
        self.temps = out;
        match res {
            Ok(stats) => {
                self.note_settled(power, true);
                Ok(stats)
            }
            Err(e) => {
                self.settled = false;
                Err(e)
            }
        }
    }

    /// Advances the field by `dt` seconds under constant `power` (W/node),
    /// internally sub-stepping for accuracy.
    ///
    /// When the field is already stationary under a power vector that
    /// matches `power` within [`POWER_MATCH_REL_TOL`], the whole call is a
    /// recorded fast-path hit and the field is left untouched (the exact
    /// solution within the inner solve's own tolerance).
    pub fn step(&mut self, grid: &ThermalGrid, power: &[f64], dt: f64) {
        self.step_with_trace(grid, power, dt, None);
    }

    /// [`TransientState::step`] with an optional timeline track: each
    /// solved backward-Euler sub-step becomes a `sor_substep` span, so a
    /// Perfetto timeline shows sub-step count and cost inside every
    /// `thermal_solve` epoch. Fast-path and skipped sub-steps emit no
    /// spans — their absence *is* the signal that the settled-state
    /// optimisations fired.
    pub fn step_with_trace(
        &mut self,
        grid: &ThermalGrid,
        power: &[f64],
        dt: f64,
        mut trace: Option<&mut TraceTrack>,
    ) {
        assert_eq!(power.len(), grid.node_count());
        assert!(dt >= 0.0);
        if dt == 0.0 {
            return;
        }
        if self.settled && power_matches(&self.last_power, power) {
            self.stats.fast_path_hits += 1;
            return;
        }
        let substeps = (dt / self.max_substep_s).ceil().max(1.0) as usize;
        let h = dt / substeps as f64;
        self.prepare_diag(grid, h);
        let mut stationary = false;
        for k in 0..substeps {
            stationary = match trace.as_deref_mut() {
                Some(t) => {
                    let tok = t.begin("sor_substep");
                    let s = self.substep(grid, power);
                    t.end(tok);
                    s
                }
                None => self.substep(grid, power),
            };
            if stationary {
                // Nothing moved within tolerance: the remaining sub-steps
                // of this epoch would be identity solves.
                self.stats.skipped_substeps += (substeps - 1 - k) as u64;
                break;
            }
        }
        self.note_settled(power, stationary);
    }

    /// Returns every node to ambient, drops the fast-path key, and
    /// clears the work counters — the state a fresh
    /// [`TransientState::new`] would give without re-deriving the
    /// sub-step bound.
    pub fn reset(&mut self) {
        self.temps.fill(self.ambient_c);
        self.prev.fill(self.ambient_c);
        self.last_power.clear();
        self.settled = false;
        self.stats = TransientSolverStats::default();
    }

    /// Records `power` as the last-applied vector and the settled flag.
    fn note_settled(&mut self, power: &[f64], settled: bool) {
        self.last_power.clear();
        self.last_power.extend_from_slice(power);
        self.settled = settled;
    }

    /// Rebuilds the per-node diagonal scratch for sub-step length `h`
    /// (no-op when already valid — `h` is constant within an epoch and
    /// usually across epochs).
    fn prepare_diag(&mut self, grid: &ThermalGrid, h: f64) {
        let n = grid.node_count();
        if self.diag_h == h && self.inv_diag.len() == n {
            return;
        }
        let caps = grid.capacitance();
        let g_total = grid.g_total();
        self.c_over_h.clear();
        self.inv_diag.clear();
        for i in 0..n {
            let coh = self.c_scale * caps[i] / h;
            self.c_over_h.push(coh);
            self.inv_diag.push(1.0 / (coh + g_total[i]));
        }
        self.diag_h = h;
    }

    /// One backward-Euler step of length `diag_h`: solves
    /// `(C/h + G) T_new = C/h · T_old + P + G_amb · T_amb`
    /// with red-black over-relaxed Gauss–Seidel warm-started from
    /// `T_old`. Returns whether the field was already stationary (the
    /// first sweep moved nothing beyond tolerance).
    fn substep(&mut self, grid: &ThermalGrid, power: &[f64]) -> bool {
        let g_amb = grid.g_ambient();
        let n = grid.node_count();
        self.prev.copy_from_slice(&self.temps);
        for i in 0..n {
            self.rhs[i] = power[i] + self.c_over_h[i] * self.prev[i] + g_amb[i] * self.ambient_c;
        }
        let order = grid.rb_order();
        let mut sweeps = 0usize;
        let mut first_sweep_delta = f64::INFINITY;
        let mut converged = false;
        while sweeps < TR_MAX_SWEEPS {
            sweeps += 1;
            let mut max_delta: f64 = 0.0;
            for &ni in order {
                let i = ni as usize;
                let mut acc = self.rhs[i];
                for (nb, g) in grid.neighbours(i) {
                    acc += g * self.temps[nb];
                }
                let fresh = acc * self.inv_diag[i];
                let updated = self.temps[i] + TR_OMEGA * (fresh - self.temps[i]);
                max_delta = max_delta.max((updated - self.temps[i]).abs());
                self.temps[i] = updated;
            }
            if sweeps == 1 {
                first_sweep_delta = max_delta;
            }
            if max_delta < TR_TOLERANCE {
                converged = true;
                break;
            }
        }
        debug_assert!(converged, "transient inner solve did not converge");
        self.stats.substeps += 1;
        self.stats.sweeps += sweeps as u64;
        self.stats.sweep_hist.record(sweeps as u64);
        converged && first_sweep_delta < TR_TOLERANCE
    }
}

impl ThermalSolve for TransientState {
    fn name(&self) -> &'static str {
        "rb-sor-fastpath"
    }

    fn temps(&self) -> &[f64] {
        TransientState::temps(self)
    }

    fn ambient_c(&self) -> f64 {
        TransientState::ambient_c(self)
    }

    fn c_scale(&self) -> f64 {
        TransientState::c_scale(self)
    }

    fn solver_stats(&self) -> &TransientSolverStats {
        TransientState::solver_stats(self)
    }

    fn step(&mut self, grid: &ThermalGrid, power: &[f64], dt: f64) {
        TransientState::step(self, grid, power, dt);
    }

    fn step_traced(
        &mut self,
        grid: &ThermalGrid,
        power: &[f64],
        dt: f64,
        trace: Option<&mut TraceTrack>,
    ) {
        TransientState::step_with_trace(self, grid, power, dt, trace);
    }

    fn try_jump_to_steady_state(
        &mut self,
        grid: &ThermalGrid,
        power: &[f64],
    ) -> Result<SolveStats, NonConvergence> {
        TransientState::try_jump_to_steady_state(self, grid, power)
    }

    fn reset(&mut self) {
        TransientState::reset(self);
    }
}

/// Whether two power vectors are equal within the fast-path tolerance.
fn power_matches(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            (x - y).abs() <= POWER_MATCH_ABS_TOL_W + POWER_MATCH_REL_TOL * x.abs().max(y.abs())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooling::Cooling;
    use crate::floorplan::Floorplan;
    use crate::layers::StackConfig;
    use coolpim_telemetry::Tolerance;

    fn small_grid() -> ThermalGrid {
        ThermalGrid::build(
            StackConfig::hmc11(),
            Floorplan::hmc11(),
            Cooling::LowEndActive,
        )
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let g = small_grid();
        let p = vec![0.0; g.node_count()];
        let t = steady_state(&g, &p, 25.0);
        let tol = Tolerance::abs(1e-6);
        for v in t {
            assert!(tol.allows(25.0, v), "node at {v} °C, expected ambient");
        }
    }

    #[test]
    fn steady_state_is_linear_in_power() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 10)] = 2.0;
        let t1 = steady_state(&g, &p, 0.0);
        for v in &mut p {
            *v *= 3.0;
        }
        let t3 = steady_state(&g, &p, 0.0);
        let tol = Tolerance::abs(1e-4);
        for (a, b) in t1.iter().zip(&t3) {
            assert!(tol.allows(3.0 * a, *b), "linearity violated: {a} vs {b}");
        }
    }

    #[test]
    fn global_energy_balance_holds_at_steady_state() {
        // Total power in == total power out to ambient.
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 3)] = 5.0;
        p[g.node(2, 7)] = 2.5;
        let t = steady_state(&g, &p, 25.0);
        let out: f64 = (0..g.node_count())
            .map(|i| g.g_ambient()[i] * (t[i] - 25.0))
            .sum();
        assert!((out - 7.5).abs() < 1e-3, "energy out {out} != 7.5 W in");
    }

    #[test]
    fn steady_state_into_reuses_the_buffer_and_reports_work() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 4.0;
        let mut buf = Vec::new();
        let s1 = try_steady_state_into(&g, &p, 25.0, &mut buf).expect("converges");
        assert!(s1.sweeps > 0);
        assert!(s1.residual_c < 1e-6);
        let reference = steady_state(&g, &p, 25.0);
        for (a, b) in buf.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9);
        }
        // Second solve reuses the buffer (capacity unchanged) and gives
        // the same answer despite the stale contents.
        let cap = buf.capacity();
        let s2 = try_steady_state_into(&g, &p, 25.0, &mut buf).expect("converges");
        assert_eq!(buf.capacity(), cap);
        assert_eq!(s1.sweeps, s2.sweeps);
        for (a, b) in buf.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn capped_solve_reports_residual_and_sweeps() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 4.0;
        let mut buf = Vec::new();
        let err = try_steady_state_capped(&g, &p, 25.0, &mut buf, 2).expect_err("cap of 2 sweeps");
        assert_eq!(err.sweeps, 2);
        assert!(err.residual_c > err.tolerance_c, "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("2 sweeps"), "{msg}");
        assert!(msg.contains("residual"), "{msg}");
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 4.0;
        let ss = steady_state(&g, &p, 25.0);
        let mut tr = TransientState::new(&g, 25.0, 1e-4);
        // Step for many scaled time constants.
        for _ in 0..100 {
            tr.step(&g, &p, 1e-3);
        }
        let max_err = tr
            .temps()
            .iter()
            .zip(&ss)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 0.2,
            "transient end-state differs from steady state by {max_err} °C"
        );
    }

    #[test]
    fn transient_heats_monotonically_under_constant_power() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 4.0;
        let mut tr = TransientState::new(&g, 25.0, 1e-4);
        let probe = g.node(1, 5);
        let mut last = tr.temps()[probe];
        for _ in 0..20 {
            tr.step(&g, &p, 1e-4);
            let now = tr.temps()[probe];
            assert!(now >= last - 1e-9, "hot node cooled under constant power");
            last = now;
        }
        assert!(last > 25.0);
    }

    #[test]
    fn transient_cools_back_to_ambient_when_power_removed() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 6.0;
        let mut tr = TransientState::new(&g, 25.0, 1e-4);
        tr.jump_to_steady_state(&g, &p);
        let probe = g.node(1, 5);
        assert!(tr.temps()[probe] > 30.0);
        let zero = vec![0.0; g.node_count()];
        for _ in 0..200 {
            tr.step(&g, &zero, 1e-3);
        }
        assert!((tr.temps()[probe] - 25.0).abs() < 0.3);
    }

    #[test]
    fn smaller_c_scale_responds_faster() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 6.0;
        let probe = g.node(1, 5);
        let mut fast = TransientState::new(&g, 25.0, 1e-5);
        let mut slow = TransientState::new(&g, 25.0, 1e-2);
        fast.step(&g, &p, 5e-4);
        slow.step(&g, &p, 5e-4);
        assert!(fast.temps()[probe] > slow.temps()[probe] + 0.5);
    }

    #[test]
    fn unchanged_power_after_steady_state_takes_the_fast_path() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 6.0;
        let mut tr = TransientState::new(&g, 25.0, 1e-4);
        tr.jump_to_steady_state(&g, &p);
        let before = tr.temps().to_vec();
        let substeps_before = tr.solver_stats().substeps;
        for _ in 0..5 {
            tr.step(&g, &p, 1e-3);
        }
        let stats = tr.solver_stats();
        assert_eq!(stats.fast_path_hits, 5, "every step should be skipped");
        assert_eq!(
            stats.substeps, substeps_before,
            "no sub-step may be solved on the fast path"
        );
        assert_eq!(tr.temps(), &before[..], "fast path must not move temps");
        // A genuinely different power vector leaves the fast path.
        p[g.node(1, 5)] = 3.0;
        tr.step(&g, &p, 1e-3);
        assert_eq!(tr.solver_stats().fast_path_hits, 5);
        assert!(tr.solver_stats().substeps > substeps_before);
        assert!(tr.temps()[g.node(1, 5)] < before[g.node(1, 5)]);
    }

    #[test]
    fn settled_field_skips_remaining_substeps() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 6.0;
        let mut tr = TransientState::new(&g, 25.0, 1e-4);
        // Drive to (near) equilibrium the long way.
        for _ in 0..400 {
            tr.step(&g, &p, 1e-3);
        }
        let stats = tr.solver_stats();
        assert!(
            stats.fast_path_hits > 0 || stats.skipped_substeps > 0,
            "a converged tail must stop paying for sweeps: {stats:?}"
        );
        // The tail is still physically correct.
        let ss = steady_state(&g, &p, 25.0);
        let probe = g.node(1, 5);
        assert!((tr.temps()[probe] - ss[probe]).abs() < 0.05);
    }

    #[test]
    fn solver_stats_histogram_tracks_substeps() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 7)] = 2.0;
        let mut tr = TransientState::new(&g, 25.0, 1e-4);
        tr.step(&g, &p, 5e-4);
        let stats = tr.solver_stats();
        assert!(stats.substeps > 0);
        assert_eq!(stats.sweep_hist.count(), stats.substeps);
        assert!(stats.sweeps >= stats.substeps, "≥1 sweep per sub-step");
        assert!(stats.sweeps_per_substep() >= 1.0);
    }

    #[test]
    fn power_match_tolerance_is_tight() {
        let a = [1.0, 0.0, 5.0e-3];
        assert!(power_matches(&a, &[1.0, 0.0, 5.0e-3]));
        assert!(power_matches(&a, &[1.0 + 1e-12, 0.0, 5.0e-3]));
        assert!(!power_matches(&a, &[1.001, 0.0, 5.0e-3]));
        assert!(!power_matches(&a, &[1.0, 1e-6, 5.0e-3]));
        assert!(!power_matches(&a, &[1.0, 0.0]));
    }
}
