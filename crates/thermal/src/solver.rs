//! Steady-state and transient solvers for the RC thermal network.
//!
//! * [`steady_state`] solves `G·T = P` with successive over-relaxation
//!   (the network's conductance matrix is symmetric diagonally dominant,
//!   so SOR converges for 0 < ω < 2).
//! * [`TransientState`] advances `C·dT/dt = P − G·T` with **backward
//!   Euler**: each sub-step solves the implicit system with Gauss–Seidel
//!   warm-started from the previous field. Backward Euler is
//!   unconditionally stable, so sub-step length is chosen for accuracy of
//!   the millisecond-scale modes rather than for stability of the
//!   microsecond cell modes — this is what makes multi-millisecond
//!   co-simulation windows cheap.
//!
//! Temperatures returned are absolute °C.

use crate::grid::ThermalGrid;

/// SOR relaxation factor for the steady-state solve.
const SOR_OMEGA: f64 = 1.92;
/// Steady-state convergence threshold (max |ΔT| per sweep, °C).
const SS_TOLERANCE: f64 = 1e-7;
/// Steady-state iteration cap.
const SS_MAX_SWEEPS: usize = 60_000;
/// Transient inner-solve convergence threshold (°C).
const TR_TOLERANCE: f64 = 1e-6;
/// Transient inner-solve sweep cap per sub-step.
const TR_MAX_SWEEPS: usize = 2_000;

/// Solves the steady-state temperature field for `power` (W per node) at
/// the given ambient temperature (°C). Returns one temperature per node.
///
/// # Panics
/// Panics if `power.len()` does not match the grid's node count, or if the
/// solve fails to converge (which would indicate a malformed network).
pub fn steady_state(grid: &ThermalGrid, power: &[f64], ambient_c: f64) -> Vec<f64> {
    assert_eq!(
        power.len(),
        grid.node_count(),
        "power vector length mismatch"
    );
    let n = grid.node_count();
    let g_total = grid.g_total();
    // Solve for temperature *rise* over ambient; the ambient boundary term
    // vanishes in rise coordinates.
    let mut t = vec![0.0; n];
    let mut converged = false;
    for _ in 0..SS_MAX_SWEEPS {
        let mut max_delta: f64 = 0.0;
        for i in 0..n {
            let mut acc = power[i];
            for (nb, g) in grid.neighbours(i) {
                acc += g * t[nb];
            }
            debug_assert!(g_total[i] > 0.0);
            let fresh = acc / g_total[i];
            let updated = t[i] + SOR_OMEGA * (fresh - t[i]);
            max_delta = max_delta.max((updated - t[i]).abs());
            t[i] = updated;
        }
        if max_delta < SS_TOLERANCE {
            converged = true;
            break;
        }
    }
    assert!(converged, "steady-state solve did not converge");
    for v in &mut t {
        *v += ambient_c;
    }
    t
}

/// Transient temperature state advanced with backward Euler.
#[derive(Debug, Clone)]
pub struct TransientState {
    /// Absolute node temperatures (°C).
    temps: Vec<f64>,
    /// Ambient temperature (°C).
    ambient_c: f64,
    /// Capacitance scale: <1 accelerates the plant uniformly. The CoolPIM
    /// reproduction calibrates this so the cube-level time constant
    /// matches the paper's ~1 ms thermal response (Fig. 8); `1.0` keeps
    /// physical capacitances.
    c_scale: f64,
    /// Longest sub-step taken by [`TransientState::step`] (s).
    max_substep_s: f64,
    /// Scratch buffer for the previous field within a sub-step.
    prev: Vec<f64>,
}

impl TransientState {
    /// Creates a transient state with every node at ambient.
    ///
    /// The sub-step bound is set to 1/20 of the scaled sink time constant,
    /// which resolves the dynamics the CoolPIM control loop reacts to.
    pub fn new(grid: &ThermalGrid, ambient_c: f64, c_scale: f64) -> Self {
        assert!(c_scale > 0.0);
        let sink = grid.sink_node();
        let sink_tau = c_scale * grid.capacitance()[sink] / grid.g_ambient()[sink];
        let n = grid.node_count();
        Self {
            temps: vec![ambient_c; n],
            ambient_c,
            c_scale,
            max_substep_s: (sink_tau / 20.0).max(1e-9),
            prev: vec![ambient_c; n],
        }
    }

    /// Ambient temperature (°C).
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Current node temperatures (absolute °C).
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// The capacitance scale this state was created with.
    pub fn c_scale(&self) -> f64 {
        self.c_scale
    }

    /// Overwrites the state with a steady-state solution for `power`.
    pub fn jump_to_steady_state(&mut self, grid: &ThermalGrid, power: &[f64]) {
        self.temps = steady_state(grid, power, self.ambient_c);
    }

    /// Advances the field by `dt` seconds under constant `power` (W/node),
    /// internally sub-stepping for accuracy.
    pub fn step(&mut self, grid: &ThermalGrid, power: &[f64], dt: f64) {
        assert_eq!(power.len(), grid.node_count());
        assert!(dt >= 0.0);
        if dt == 0.0 {
            return;
        }
        let substeps = (dt / self.max_substep_s).ceil().max(1.0) as usize;
        let h = dt / substeps as f64;
        for _ in 0..substeps {
            self.substep(grid, power, h);
        }
    }

    /// One backward-Euler step of length `h`: solves
    /// `(C/h + G) T_new = C/h · T_old + P + G_amb · T_amb`
    /// with Gauss–Seidel warm-started from `T_old`.
    fn substep(&mut self, grid: &ThermalGrid, power: &[f64], h: f64) {
        let caps = grid.capacitance();
        let g_amb = grid.g_ambient();
        let g_total = grid.g_total();
        let n = grid.node_count();
        self.prev.copy_from_slice(&self.temps);
        let mut converged = false;
        for _ in 0..TR_MAX_SWEEPS {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let c_over_h = self.c_scale * caps[i] / h;
                let mut acc = power[i] + c_over_h * self.prev[i] + g_amb[i] * self.ambient_c;
                for (nb, g) in grid.neighbours(i) {
                    acc += g * self.temps[nb];
                }
                let fresh = acc / (c_over_h + g_total[i]);
                max_delta = max_delta.max((fresh - self.temps[i]).abs());
                self.temps[i] = fresh;
            }
            if max_delta < TR_TOLERANCE {
                converged = true;
                break;
            }
        }
        debug_assert!(converged, "transient inner solve did not converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooling::Cooling;
    use crate::floorplan::Floorplan;
    use crate::layers::StackConfig;

    fn small_grid() -> ThermalGrid {
        ThermalGrid::build(
            StackConfig::hmc11(),
            Floorplan::hmc11(),
            Cooling::LowEndActive,
        )
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let g = small_grid();
        let p = vec![0.0; g.node_count()];
        let t = steady_state(&g, &p, 25.0);
        for v in t {
            assert!((v - 25.0).abs() < 1e-6);
        }
    }

    #[test]
    fn steady_state_is_linear_in_power() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 10)] = 2.0;
        let t1 = steady_state(&g, &p, 0.0);
        for v in &mut p {
            *v *= 3.0;
        }
        let t3 = steady_state(&g, &p, 0.0);
        for (a, b) in t1.iter().zip(&t3) {
            assert!((3.0 * a - b).abs() < 1e-4, "linearity violated: {a} vs {b}");
        }
    }

    #[test]
    fn global_energy_balance_holds_at_steady_state() {
        // Total power in == total power out to ambient.
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 3)] = 5.0;
        p[g.node(2, 7)] = 2.5;
        let t = steady_state(&g, &p, 25.0);
        let out: f64 = (0..g.node_count())
            .map(|i| g.g_ambient()[i] * (t[i] - 25.0))
            .sum();
        assert!((out - 7.5).abs() < 1e-3, "energy out {out} != 7.5 W in");
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 4.0;
        let ss = steady_state(&g, &p, 25.0);
        let mut tr = TransientState::new(&g, 25.0, 1e-4);
        // Step for many scaled time constants.
        for _ in 0..100 {
            tr.step(&g, &p, 1e-3);
        }
        let max_err = tr
            .temps()
            .iter()
            .zip(&ss)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 0.2,
            "transient end-state differs from steady state by {max_err} °C"
        );
    }

    #[test]
    fn transient_heats_monotonically_under_constant_power() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 4.0;
        let mut tr = TransientState::new(&g, 25.0, 1e-4);
        let probe = g.node(1, 5);
        let mut last = tr.temps()[probe];
        for _ in 0..20 {
            tr.step(&g, &p, 1e-4);
            let now = tr.temps()[probe];
            assert!(now >= last - 1e-9, "hot node cooled under constant power");
            last = now;
        }
        assert!(last > 25.0);
    }

    #[test]
    fn transient_cools_back_to_ambient_when_power_removed() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 6.0;
        let mut tr = TransientState::new(&g, 25.0, 1e-4);
        tr.jump_to_steady_state(&g, &p);
        let probe = g.node(1, 5);
        assert!(tr.temps()[probe] > 30.0);
        let zero = vec![0.0; g.node_count()];
        for _ in 0..200 {
            tr.step(&g, &zero, 1e-3);
        }
        assert!((tr.temps()[probe] - 25.0).abs() < 0.3);
    }

    #[test]
    fn smaller_c_scale_responds_faster() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 6.0;
        let probe = g.node(1, 5);
        let mut fast = TransientState::new(&g, 25.0, 1e-5);
        let mut slow = TransientState::new(&g, 25.0, 1e-2);
        fast.step(&g, &p, 5e-4);
        slow.step(&g, &p, 5e-4);
        assert!(fast.temps()[probe] > slow.temps()[probe] + 0.5);
    }
}
