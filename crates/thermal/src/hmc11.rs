//! HMC 1.1 prototype: the paper's measured data (Fig. 1) and the model
//! validation against it (Fig. 2).
//!
//! The prototype (Pico SC-6 Mini backplane, AC-510 module: Kintex FPGA +
//! 4 GB HMC 1.1, two half-width links, 60 GB/s peak) was measured with a
//! thermal camera under three heat sinks. The *module* heat sinks differ
//! from the Table II server-class parts, so their effective resistances
//! are calibrated from the measured idle points (the busy points and the
//! passive shutdown then follow from the model).

use crate::cooling::Cooling;
use crate::model::{HmcThermalModel, ThermalReadout};
use crate::power::{PowerParams, TrafficSample};
use crate::EXTENDED_TEMP_LIMIT_C;

/// HMC 1.1 peak link data bandwidth (bytes/s): two half-width links,
/// 60 GB/s aggregate.
pub const HMC11_PEAK_BW: f64 = 60.0e9;

/// The three heat sinks mounted on the prototype in Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrototypeSink {
    /// The stock high-end active cooler of the AC-510 module.
    HighEndActive,
    /// A low-end active cooler.
    LowEndActive,
    /// A passive plate-fin sink.
    Passive,
}

impl PrototypeSink {
    /// All three sinks in Fig. 1 order (high-end, low-end, passive).
    pub const ALL: [PrototypeSink; 3] = [
        PrototypeSink::HighEndActive,
        PrototypeSink::LowEndActive,
        PrototypeSink::Passive,
    ];

    /// Effective sink-to-ambient resistance (°C/W), calibrated so the
    /// *modelled* idle surface temperature (which includes the secondary
    /// board heat path) matches the measured idle points of Fig. 1.
    pub fn resistance_c_per_w(self) -> f64 {
        match self {
            PrototypeSink::HighEndActive => 1.35,
            PrototypeSink::LowEndActive => 2.05,
            PrototypeSink::Passive => 5.60,
        }
    }

    /// As a [`Cooling`] value for model construction.
    pub fn cooling(self) -> Cooling {
        Cooling::Custom {
            resistance: (self.resistance_c_per_w() * 1000.0).round() as u32,
        }
    }

    /// Display name matching Fig. 1.
    pub fn name(self) -> &'static str {
        match self {
            PrototypeSink::HighEndActive => "High-end Active",
            PrototypeSink::LowEndActive => "Low-end Active",
            PrototypeSink::Passive => "Passive",
        }
    }
}

/// One measured point from the thermal-camera experiment (Fig. 1).
#[derive(Debug, Clone, Copy)]
pub struct MeasuredPoint {
    /// Which sink was mounted.
    pub sink: PrototypeSink,
    /// Measured idle surface temperature (°C).
    pub idle_surface_c: f64,
    /// Measured busy surface temperature (°C). For the passive sink this
    /// is the temperature at which the device shut down before reaching
    /// peak bandwidth.
    pub busy_surface_c: f64,
    /// Whether the device shut down before sustaining peak bandwidth.
    pub shutdown: bool,
}

/// The paper's Fig. 1 measurements.
pub const FIG1_MEASURED: [MeasuredPoint; 3] = [
    MeasuredPoint {
        sink: PrototypeSink::HighEndActive,
        idle_surface_c: 40.5,
        busy_surface_c: 47.3,
        shutdown: false,
    },
    MeasuredPoint {
        sink: PrototypeSink::LowEndActive,
        idle_surface_c: 45.3,
        busy_surface_c: 60.5,
        shutdown: false,
    },
    MeasuredPoint {
        sink: PrototypeSink::Passive,
        idle_surface_c: 71.1,
        busy_surface_c: 85.4,
        shutdown: true,
    },
];

/// Junction-to-case resistance used by the paper's "5 to 10 degrees higher
/// than surface, given 20 W" estimate (°C/W). 0.35 °C/W × 18.4 W ≈ 6.4 °C.
pub const R_JUNCTION_TO_CASE: f64 = 0.35;

/// Builds the calibrated HMC 1.1 thermal model for a prototype sink.
pub fn prototype_model(sink: PrototypeSink) -> HmcThermalModel {
    HmcThermalModel::hmc11(sink.cooling())
}

/// Simulated equivalent of one Fig. 1 panel.
#[derive(Debug, Clone, Copy)]
pub struct PrototypePanel {
    /// Which sink.
    pub sink: PrototypeSink,
    /// Modelled idle readout.
    pub idle: ThermalReadout,
    /// Modelled busy (60 GB/s) readout.
    pub busy: ThermalReadout,
    /// Whether the modelled busy die temperature exceeds the extended
    /// operating range, i.e. the prototype's conservative policy would
    /// shut the device down before sustaining peak bandwidth.
    pub shutdown: bool,
}

/// Runs the Fig. 1 reproduction: idle and busy steady states per sink.
pub fn run_fig1() -> Vec<PrototypePanel> {
    PrototypeSink::ALL
        .iter()
        .map(|&sink| {
            let mut m = prototype_model(sink);
            let idle = m.steady_state(&TrafficSample::idle(1e-3));
            let busy = m.steady_state(&TrafficSample::external_stream(HMC11_PEAK_BW, 1e-3));
            // The prototype firmware stops the device once the in-package
            // DRAM leaves the extended range (≈95 °C die, §III-A.2).
            let shutdown = busy.peak_dram_c >= EXTENDED_TEMP_LIMIT_C;
            PrototypePanel {
                sink,
                idle,
                busy,
                shutdown,
            }
        })
        .collect()
}

/// One bar group of Fig. 2 (model validation).
#[derive(Debug, Clone, Copy)]
pub struct ValidationPoint {
    /// Which sink (the paper validates low-end and high-end).
    pub sink: PrototypeSink,
    /// Measured busy surface temperature (°C).
    pub surface_measured_c: f64,
    /// Die temperature estimated from the surface via the typical
    /// junction-to-case resistance (°C).
    pub die_estimated_c: f64,
    /// Die temperature from the RC model (°C).
    pub die_modeled_c: f64,
}

/// Runs the Fig. 2 reproduction for the low-end and high-end sinks.
pub fn run_fig2() -> Vec<ValidationPoint> {
    let busy_power =
        PowerParams::hmc11().total_power_w(&TrafficSample::external_stream(HMC11_PEAK_BW, 1e-3));
    FIG1_MEASURED
        .iter()
        .filter(|m| !m.shutdown)
        .map(|meas| {
            let mut model = prototype_model(meas.sink);
            let busy = model.steady_state(&TrafficSample::external_stream(HMC11_PEAK_BW, 1e-3));
            ValidationPoint {
                sink: meas.sink,
                surface_measured_c: meas.busy_surface_c,
                die_estimated_c: meas.busy_surface_c + R_JUNCTION_TO_CASE * busy_power,
                die_modeled_c: busy.peak_dram_c,
            }
        })
        .collect()
}

/// Maximum external bandwidth (bytes/s) the prototype can sustain under a
/// sink before the die crosses the shutdown threshold, found by bisection.
pub fn max_sustainable_bandwidth(sink: PrototypeSink, die_limit_c: f64) -> f64 {
    let mut lo = 0.0f64;
    let mut hi = HMC11_PEAK_BW;
    let mut m = prototype_model(sink);
    let peak_at = |m: &mut HmcThermalModel, bw: f64| {
        m.steady_state(&TrafficSample::external_stream(bw, 1e-3))
            .peak_dram_c
    };
    if peak_at(&mut m, hi) < die_limit_c {
        return hi;
    }
    if peak_at(&mut m, lo) >= die_limit_c {
        return 0.0;
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if peak_at(&mut m, mid) < die_limit_c {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_surfaces_match_measurements_within_tolerance() {
        for panel in run_fig1() {
            let meas = FIG1_MEASURED.iter().find(|m| m.sink == panel.sink).unwrap();
            let err = (panel.idle.surface_c - meas.idle_surface_c).abs();
            assert!(
                err < 4.0,
                "{}: modelled idle surface {} vs measured {}",
                panel.sink.name(),
                panel.idle.surface_c,
                meas.idle_surface_c
            );
        }
    }

    #[test]
    fn busy_surfaces_match_measurements_within_tolerance() {
        // Active sinks only; the passive run shut down mid-ramp so its
        // measured "busy" value is a shutdown snapshot, not steady state.
        for panel in run_fig1()
            .iter()
            .filter(|p| p.sink != PrototypeSink::Passive)
        {
            let meas = FIG1_MEASURED.iter().find(|m| m.sink == panel.sink).unwrap();
            let err = (panel.busy.surface_c - meas.busy_surface_c).abs();
            assert!(
                err < 6.0,
                "{}: modelled busy surface {} vs measured {}",
                panel.sink.name(),
                panel.busy.surface_c,
                meas.busy_surface_c
            );
        }
    }

    #[test]
    fn passive_sink_cannot_sustain_peak_bandwidth() {
        let panels = run_fig1();
        let passive = panels
            .iter()
            .find(|p| p.sink == PrototypeSink::Passive)
            .unwrap();
        assert!(
            passive.shutdown,
            "passive sink should overheat at peak bandwidth"
        );
        let max_bw = max_sustainable_bandwidth(PrototypeSink::Passive, EXTENDED_TEMP_LIMIT_C);
        assert!(
            max_bw < HMC11_PEAK_BW,
            "sustainable {max_bw} should be below peak"
        );
    }

    #[test]
    fn active_sinks_do_not_shut_down() {
        for panel in run_fig1() {
            if panel.sink != PrototypeSink::Passive {
                assert!(
                    !panel.shutdown,
                    "{} unexpectedly shut down",
                    panel.sink.name()
                );
            }
        }
    }

    #[test]
    fn modeled_die_temps_track_estimates() {
        // Fig. 2's claim: the model has reasonable error vs the estimate.
        for v in run_fig2() {
            let err = (v.die_modeled_c - v.die_estimated_c).abs();
            assert!(
                err < 10.0,
                "{}: modeled die {} vs estimated {}",
                v.sink.name(),
                v.die_modeled_c,
                v.die_estimated_c
            );
            assert!(v.die_modeled_c > v.surface_measured_c - 6.0);
        }
    }

    #[test]
    fn idle_ordering_follows_sink_quality() {
        let panels = run_fig1();
        assert!(panels[0].idle.surface_c < panels[1].idle.surface_c);
        assert!(panels[1].idle.surface_c < panels[2].idle.surface_c);
    }
}
