//! Die-stack geometry: layer specifications and HMC stack presets.

use crate::materials::{self, Material};

/// What a layer physically is; used to classify readouts (peak DRAM
/// temperature vs logic temperature) and to route power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Organic package substrate (bottom of the stack).
    Substrate,
    /// The logic die carrying vault controllers, crossbar, SerDes, PIM FUs.
    Logic,
    /// A DRAM die. The payload is the die index from the bottom (0-based).
    Dram(u8),
    /// Thermal interface material between top die and heat-sink base.
    Tim,
}

impl LayerKind {
    /// True for DRAM dies.
    pub fn is_dram(self) -> bool {
        matches!(self, LayerKind::Dram(_))
    }
}

/// One layer of the stack.
#[derive(Debug, Clone, Copy)]
pub struct LayerSpec {
    /// Classification of the layer.
    pub kind: LayerKind,
    /// Layer thickness in metres.
    pub thickness: f64,
    /// Bulk material of the layer.
    pub material: Material,
    /// Bonding interface *below* this layer (None for the bottom layer):
    /// thickness in metres and material.
    pub interface_below: Option<(f64, Material)>,
}

/// Full description of a cube stack (geometry only; cooling and floorplan
/// are supplied separately).
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Die width in metres (x extent).
    pub die_w: f64,
    /// Die height in metres (y extent).
    pub die_h: f64,
    /// Layers bottom-to-top (substrate first, TIM last).
    pub layers: Vec<LayerSpec>,
    /// Heat spread resistance from substrate to board/ambient (°C/W);
    /// the secondary heat path. Large: most heat exits through the sink.
    pub board_resistance: f64,
    /// Heat-sink base (spreader) capacitance in J/K before time scaling.
    pub sink_capacitance: f64,
}

/// Standard thinned-die thickness (m).
pub const DIE_THICKNESS: f64 = 50e-6;
/// Inter-die bond layer thickness (m).
pub const BOND_THICKNESS: f64 = 20e-6;
/// TIM thickness (m).
pub const TIM_THICKNESS: f64 = 50e-6;
/// Substrate thickness (m).
pub const SUBSTRATE_THICKNESS: f64 = 300e-6;

impl StackConfig {
    /// HMC 2.0: 8 GB cube, one logic die with **eight** DRAM dies on top
    /// (paper §V-A), 136 mm² (32 vaults × 4.25 mm²/vault as in §V-A's area
    /// estimate), arranged 16 mm × 8.5 mm.
    pub fn hmc20() -> Self {
        Self::stacked(8, 16.0e-3, 8.5e-3)
    }

    /// HMC 1.1: 4 GB cube, one logic die with **four** DRAM dies,
    /// 68 mm² (16 vaults × 4.25 mm²), arranged 9.25 mm × 7.35 mm.
    ///
    /// The first-generation stack uses the more conductive
    /// [`materials::BOND_LAYER_HMC11`] bonding, which reproduces the
    /// prototype's small die-to-surface gradient (paper Fig. 2).
    pub fn hmc11() -> Self {
        let mut s = Self::stacked(4, 9.25e-3, 7.35e-3);
        for layer in &mut s.layers {
            if let Some((t, _)) = layer.interface_below {
                layer.interface_below = Some((t, materials::BOND_LAYER_HMC11));
            }
        }
        s
    }

    /// Generic HMC-style stack with `dram_dies` DRAM dies over one logic die.
    pub fn stacked(dram_dies: u8, die_w: f64, die_h: f64) -> Self {
        let bond = Some((BOND_THICKNESS, materials::BOND_LAYER));
        let mut layers = Vec::with_capacity(usize::from(dram_dies) + 3);
        layers.push(LayerSpec {
            kind: LayerKind::Substrate,
            thickness: SUBSTRATE_THICKNESS,
            material: materials::SUBSTRATE,
            interface_below: None,
        });
        layers.push(LayerSpec {
            kind: LayerKind::Logic,
            thickness: DIE_THICKNESS,
            material: materials::SILICON,
            interface_below: Some((BOND_THICKNESS, materials::BOND_LAYER)),
        });
        for die in 0..dram_dies {
            layers.push(LayerSpec {
                kind: LayerKind::Dram(die),
                thickness: DIE_THICKNESS,
                material: materials::SILICON,
                interface_below: bond,
            });
        }
        layers.push(LayerSpec {
            kind: LayerKind::Tim,
            thickness: TIM_THICKNESS,
            material: materials::TIM,
            interface_below: None,
        });
        Self {
            die_w,
            die_h,
            layers,
            board_resistance: 12.0,
            sink_capacitance: 20.0,
        }
    }

    /// Number of DRAM dies in the stack.
    pub fn dram_die_count(&self) -> usize {
        self.layers.iter().filter(|l| l.kind.is_dram()).count()
    }

    /// Die area in m².
    pub fn die_area(&self) -> f64 {
        self.die_w * self.die_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmc20_has_eight_dram_dies_over_logic() {
        let s = StackConfig::hmc20();
        assert_eq!(s.dram_die_count(), 8);
        assert_eq!(s.layers.first().unwrap().kind, LayerKind::Substrate);
        assert_eq!(s.layers[1].kind, LayerKind::Logic);
        assert_eq!(s.layers.last().unwrap().kind, LayerKind::Tim);
    }

    #[test]
    fn hmc11_has_four_dram_dies_and_68mm2() {
        let s = StackConfig::hmc11();
        assert_eq!(s.dram_die_count(), 4);
        let area_mm2 = s.die_area() * 1e6;
        assert!((area_mm2 - 68.0).abs() < 0.5, "area {area_mm2} mm²");
    }

    #[test]
    fn hmc20_area_matches_per_vault_estimate() {
        // 32 vaults × 4.25 mm²/vault = 136 mm².
        let s = StackConfig::hmc20();
        let area_mm2 = s.die_area() * 1e6;
        assert!((area_mm2 - 136.0).abs() < 1.0, "area {area_mm2} mm²");
    }

    #[test]
    fn dram_dies_are_ordered_bottom_up() {
        let s = StackConfig::hmc20();
        let dram: Vec<u8> = s
            .layers
            .iter()
            .filter_map(|l| match l.kind {
                LayerKind::Dram(i) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(dram, (0..8).collect::<Vec<_>>());
    }
}
