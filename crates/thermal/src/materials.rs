//! Thermal material properties used when assembling the RC network.
//!
//! Conductivities and volumetric heat capacities are textbook values for
//! the materials found in a 3D-stacked DRAM package. The inter-die bonding
//! interfaces dominate the junction-to-sink resistance of the stack and are
//! what the calibration in `DESIGN.md` §6 tunes.

/// A homogeneous material participating in heat conduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Thermal conductivity in W/(m·K).
    pub conductivity: f64,
    /// Volumetric heat capacity in J/(m³·K).
    pub volumetric_capacity: f64,
}

impl Material {
    /// Creates a material from conductivity (W/(m·K)) and volumetric heat
    /// capacity (J/(m³·K)).
    pub const fn new(conductivity: f64, volumetric_capacity: f64) -> Self {
        Self {
            conductivity,
            volumetric_capacity,
        }
    }
}

/// Bulk silicon (dies are thinned but still silicon-dominated).
pub const SILICON: Material = Material::new(120.0, 1.63e6);

/// Inter-die bond/underfill layer (micro-bumps in underfill).
///
/// This is the dominant vertical resistance of the stack; its conductivity
/// is the main calibration knob for the effective junction-to-sink
/// resistance (~1.3 °C/W for the HMC 2.0 stack, DESIGN.md §6).
pub const BOND_LAYER: Material = Material::new(1.35, 2.0e6);

/// Inter-die bond layer of the HMC 1.1 generation: fewer, thicker dies
/// with dense copper-pillar bonding. Calibrated so the modelled die runs
/// only ~5-10 °C above the package surface at ~20 W, matching the paper's
/// junction-estimate rule for the prototype (Fig. 2).
pub const BOND_LAYER_HMC11: Material = Material::new(5.5, 2.0e6);

/// Thermal interface material between the top die and the heat-sink base.
pub const TIM: Material = Material::new(4.0, 2.2e6);

/// Organic package substrate under the logic die.
pub const SUBSTRATE: Material = Material::new(0.8, 1.6e6);

/// Copper, for the heat-sink base/spreader lumped node.
pub const COPPER: Material = Material::new(400.0, 3.45e6);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silicon_is_far_more_conductive_than_bond_layers() {
        let ratio = SILICON.conductivity / BOND_LAYER.conductivity;
        assert!(ratio > 50.0, "ratio {ratio}");
    }

    #[test]
    fn materials_have_positive_properties() {
        for m in [SILICON, BOND_LAYER, TIM, SUBSTRATE, COPPER] {
            assert!(m.conductivity > 0.0);
            assert!(m.volumetric_capacity > 0.0);
        }
    }
}
