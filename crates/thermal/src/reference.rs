//! The canonical reference solver: the pre-optimisation transient
//! integrator, promoted out of the bench harness's in-bin replica so the
//! whole workspace shares one trusted implementation.
//!
//! [`ReferenceTransient`] advances the same backward-Euler system as
//! [`TransientState`](crate::solver::TransientState) but the way the
//! solver looked before the PR-5 optimisation pass: natural node order,
//! plain (unrelaxed) Gauss–Seidel, the per-node diagonal re-derived on
//! every sweep, and no settled-state fast paths. It is deliberately slow
//! and deliberately simple — every line is auditable against the
//! discretised equations — which is what makes it a useful oracle:
//!
//! * the `bench` bin replays a scripted co-sim sequence through both
//!   solvers and gates CI on the sweep/wall ratios (PR 5's "≥1.5× fewer
//!   sweeps" claim stays measurable);
//! * the `coolpim-validate` lockstep driver runs it side by side with
//!   the optimized solver on property-generated traffic and reports the
//!   first divergence.
//!
//! The steady-state companion, [`reference_steady_state_into`], is the
//! same plain Gauss–Seidel iteration applied to `G·T = P` — no red-black
//! ordering, no over-relaxation — with a sweep cap sized to plain GS's
//! slower convergence.

use crate::grid::ThermalGrid;
use crate::solver::{NonConvergence, SolveStats, ThermalSolve, TransientSolverStats};

/// Transient inner-solve convergence threshold (°C) — the pre-PR-5
/// value, identical to the optimized solver's.
const TR_TOLERANCE: f64 = 1e-6;
/// Transient inner-solve sweep cap per sub-step.
const TR_MAX_SWEEPS: usize = 2_000;
/// Steady-state convergence threshold (max |ΔT| per sweep, °C).
const SS_TOLERANCE: f64 = 1e-7;
/// Steady-state sweep cap. Plain Gauss–Seidel converges much more
/// slowly than the optimized red-black SOR (no ω acceleration), so the
/// cap is an order of magnitude above the optimized solver's.
const SS_MAX_SWEEPS: usize = 600_000;

/// Solves the steady state `G·T = P` with plain Gauss–Seidel in natural
/// node order (rise coordinates; ambient added at the end), writing into
/// `out` and reporting the work done.
///
/// # Panics
/// Panics if `power.len()` does not match the grid's node count.
pub fn reference_steady_state_into(
    grid: &ThermalGrid,
    power: &[f64],
    ambient_c: f64,
    out: &mut Vec<f64>,
) -> Result<SolveStats, NonConvergence> {
    assert_eq!(
        power.len(),
        grid.node_count(),
        "power vector length mismatch"
    );
    let n = grid.node_count();
    let g_total = grid.g_total();
    out.clear();
    out.resize(n, 0.0);
    let mut sweeps = 0;
    let mut last_delta = f64::INFINITY;
    while sweeps < SS_MAX_SWEEPS {
        sweeps += 1;
        let mut max_delta: f64 = 0.0;
        for i in 0..n {
            let mut acc = power[i];
            for (nb, g) in grid.neighbours(i) {
                acc += g * out[nb];
            }
            let fresh = acc / g_total[i];
            max_delta = max_delta.max((fresh - out[i]).abs());
            out[i] = fresh;
        }
        last_delta = max_delta;
        if max_delta < SS_TOLERANCE {
            for v in out.iter_mut() {
                *v += ambient_c;
            }
            return Ok(SolveStats {
                sweeps,
                residual_c: max_delta,
            });
        }
    }
    Err(NonConvergence {
        sweeps,
        residual_c: last_delta,
        tolerance_c: SS_TOLERANCE,
    })
}

/// The reference backward-Euler integrator (see the module docs).
///
/// State layout and sub-step policy mirror the pre-PR-5
/// `TransientState`: the sub-step bound is 1/20 of the scaled sink time
/// constant, and each sub-step solves the implicit system with plain
/// Gauss–Seidel to [`struct@ReferenceTransient`]'s tolerance, re-deriving the
/// per-node diagonal every sweep.
#[derive(Debug, Clone)]
pub struct ReferenceTransient {
    temps: Vec<f64>,
    ambient_c: f64,
    c_scale: f64,
    max_substep_s: f64,
    prev: Vec<f64>,
    stats: TransientSolverStats,
}

impl ReferenceTransient {
    /// Creates a reference state with every node at ambient.
    pub fn new(grid: &ThermalGrid, ambient_c: f64, c_scale: f64) -> Self {
        assert!(c_scale > 0.0);
        let sink = grid.sink_node();
        let sink_tau = c_scale * grid.capacitance()[sink] / grid.g_ambient()[sink];
        let n = grid.node_count();
        Self {
            temps: vec![ambient_c; n],
            ambient_c,
            c_scale,
            max_substep_s: (sink_tau / 20.0).max(1e-9),
            prev: vec![ambient_c; n],
            stats: TransientSolverStats::default(),
        }
    }

    /// Current node temperatures (absolute °C).
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Overwrites the field (absolute °C) without touching the work
    /// counters — used to warm-start the reference at a field computed
    /// elsewhere (e.g. the bench harness starts both contenders at the
    /// bit-identical optimized-SOR steady state).
    ///
    /// # Panics
    /// Panics if `temps.len()` does not match the node count.
    pub fn warm_start(&mut self, temps: &[f64]) {
        assert_eq!(temps.len(), self.temps.len(), "field length mismatch");
        self.temps.copy_from_slice(temps);
        self.prev.copy_from_slice(temps);
    }

    /// Cumulative solver work counters.
    pub fn solver_stats(&self) -> &TransientSolverStats {
        &self.stats
    }

    /// One backward-Euler sub-step of length `h`, exactly as the
    /// pre-PR-5 solver wrote it: natural order, no over-relaxation,
    /// `C/h` re-derived per node per sweep.
    fn substep(&mut self, grid: &ThermalGrid, power: &[f64], h: f64) {
        let caps = grid.capacitance();
        let g_amb = grid.g_ambient();
        let g_total = grid.g_total();
        let n = grid.node_count();
        self.prev.copy_from_slice(&self.temps);
        self.stats.substeps += 1;
        let mut sweeps = 0u64;
        for _ in 0..TR_MAX_SWEEPS {
            sweeps += 1;
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let c_over_h = self.c_scale * caps[i] / h;
                let mut acc = power[i] + c_over_h * self.prev[i] + g_amb[i] * self.ambient_c;
                for (nb, g) in grid.neighbours(i) {
                    acc += g * self.temps[nb];
                }
                let fresh = acc / (c_over_h + g_total[i]);
                max_delta = max_delta.max((fresh - self.temps[i]).abs());
                self.temps[i] = fresh;
            }
            if max_delta < TR_TOLERANCE {
                break;
            }
        }
        self.stats.sweeps += sweeps;
        self.stats.sweep_hist.record(sweeps);
    }
}

impl ThermalSolve for ReferenceTransient {
    fn name(&self) -> &'static str {
        "reference-gs"
    }

    fn temps(&self) -> &[f64] {
        &self.temps
    }

    fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    fn c_scale(&self) -> f64 {
        self.c_scale
    }

    fn solver_stats(&self) -> &TransientSolverStats {
        &self.stats
    }

    fn step(&mut self, grid: &ThermalGrid, power: &[f64], dt: f64) {
        assert_eq!(power.len(), grid.node_count());
        assert!(dt >= 0.0);
        if dt == 0.0 {
            return;
        }
        let substeps = (dt / self.max_substep_s).ceil().max(1.0) as usize;
        let h = dt / substeps as f64;
        for _ in 0..substeps {
            self.substep(grid, power, h);
        }
    }

    fn try_jump_to_steady_state(
        &mut self,
        grid: &ThermalGrid,
        power: &[f64],
    ) -> Result<SolveStats, NonConvergence> {
        let mut out = std::mem::take(&mut self.temps);
        let res = reference_steady_state_into(grid, power, self.ambient_c, &mut out);
        self.temps = out;
        res
    }

    fn reset(&mut self) {
        self.temps.fill(self.ambient_c);
        self.prev.fill(self.ambient_c);
        self.stats = TransientSolverStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooling::Cooling;
    use crate::floorplan::Floorplan;
    use crate::layers::StackConfig;
    use crate::solver::{steady_state, TransientState};
    use coolpim_telemetry::Tolerance;

    fn small_grid() -> ThermalGrid {
        ThermalGrid::build(
            StackConfig::hmc11(),
            Floorplan::hmc11(),
            Cooling::LowEndActive,
        )
    }

    #[test]
    fn reference_steady_state_matches_optimized_sor() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 4.0;
        p[g.node(2, 9)] = 2.0;
        let sor = steady_state(&g, &p, 25.0);
        let mut gs = Vec::new();
        let stats = reference_steady_state_into(&g, &p, 25.0, &mut gs).expect("converges");
        assert!(stats.sweeps > 0);
        // Both iterate to a 1e-7 per-sweep delta; the fixed points agree
        // to well under a millikelvin.
        let tol = Tolerance::abs(1e-3);
        for (a, b) in sor.iter().zip(&gs) {
            assert!(tol.allows(*a, *b), "SOR {a} vs plain GS {b}");
        }
    }

    #[test]
    fn reference_transient_tracks_the_optimized_solver() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 5)] = 5.0;
        let mut reference = ReferenceTransient::new(&g, 25.0, 1e-4);
        let mut optimized = TransientState::new(&g, 25.0, 1e-4);
        let tol = Tolerance::abs(5e-2);
        for _ in 0..20 {
            ThermalSolve::step(&mut reference, &g, &p, 1e-4);
            optimized.step(&g, &p, 1e-4);
            for (a, b) in reference.temps().iter().zip(optimized.temps()) {
                assert!(tol.allows(*a, *b), "reference {a} vs optimized {b}");
            }
        }
        assert!(reference.solver_stats().substeps > 0);
        assert!(reference.solver_stats().sweeps >= reference.solver_stats().substeps);
    }

    #[test]
    fn jump_then_reset_round_trips_through_the_trait() {
        let g = small_grid();
        let mut p = vec![0.0; g.node_count()];
        p[g.node(1, 3)] = 6.0;
        let mut r = ReferenceTransient::new(&g, 25.0, 1e-4);
        ThermalSolve::try_jump_to_steady_state(&mut r, &g, &p).expect("converges");
        assert!(r.temps()[g.node(1, 3)] > 30.0);
        ThermalSolve::reset(&mut r);
        assert!(r.temps().iter().all(|&t| (t - 25.0).abs() < 1e-12));
        assert_eq!(r.solver_stats().substeps, 0);
        assert_eq!(ThermalSolve::name(&r), "reference-gs");
        assert_eq!(ThermalSolve::c_scale(&r), 1e-4);
        assert_eq!(ThermalSolve::ambient_c(&r), 25.0);
    }
}
