//! High-level KitFox-style façade: couple a power model to the RC grid and
//! expose the readouts the rest of the system consumes.

use coolpim_telemetry::{Profiler, TraceTrack};

use crate::cooling::Cooling;
use crate::floorplan::Floorplan;
use crate::grid::ThermalGrid;
use crate::layers::{LayerKind, StackConfig};
use crate::power::{build_power_map_into, PowerParams, TrafficSample};
use crate::solver::{NonConvergence, ThermalSolve, TransientSolverStats, TransientState};
use crate::AMBIENT_C;

/// The cube-level thermal response time the transient plant is calibrated
/// to (seconds). The paper's feedback-control analysis (Fig. 8) puts the
/// thermal delay T_thermal at ~1 ms.
pub const DEFAULT_THERMAL_TAU_S: f64 = 1.0e-3;

/// Aggregate temperature readout of one thermal evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalReadout {
    /// Hottest DRAM cell (°C) — the quantity the paper's figures plot and
    /// the HMC thermal-warning logic watches.
    pub peak_dram_c: f64,
    /// Average DRAM temperature (°C).
    pub avg_dram_c: f64,
    /// Hottest logic-layer cell (°C).
    pub peak_logic_c: f64,
    /// Heat-sink base temperature (°C) — what a thermal camera pointed at
    /// the package surface sees in the prototype experiments.
    pub surface_c: f64,
}

/// A die stack + floorplan + cooling + power model + transient state.
///
/// Generic over the [`ThermalSolve`] seam: the default `S` is the
/// optimized [`TransientState`]; [`Self::with_solver`] swaps in any other
/// conforming solver (e.g. the plain-Gauss–Seidel
/// [`ReferenceTransient`](crate::reference::ReferenceTransient) the
/// lockstep oracle drives).
#[derive(Debug, Clone)]
pub struct HmcThermalModel<S: ThermalSolve = TransientState> {
    grid: ThermalGrid,
    params: PowerParams,
    state: S,
    dram_layers: Vec<usize>,
    logic_layer: usize,
    /// Scratch power map reused across steps.
    power_scratch: Vec<f64>,
}

// Constructors live on the non-generic impl (default `S`) because default
// type parameters don't participate in inference: `HmcThermalModel::hmc20`
// must resolve without annotation everywhere it already appears.
impl HmcThermalModel {
    /// HMC 2.0 cube (8 DRAM dies, 32 vaults) under `cooling`.
    pub fn hmc20(cooling: Cooling) -> Self {
        Self::new(
            StackConfig::hmc20(),
            Floorplan::hmc20(),
            cooling,
            PowerParams::hmc20(),
            DEFAULT_THERMAL_TAU_S,
        )
    }

    /// HMC 1.1 prototype cube (4 DRAM dies, 16 vaults) under `cooling`.
    pub fn hmc11(cooling: Cooling) -> Self {
        Self::new(
            StackConfig::hmc11(),
            Floorplan::hmc11(),
            cooling,
            PowerParams::hmc11(),
            DEFAULT_THERMAL_TAU_S,
        )
    }

    /// Fully custom model. `tau_target_s` calibrates the transient plant's
    /// dominant time constant (see [`DEFAULT_THERMAL_TAU_S`]); pass the
    /// physical value by computing it from the grid if fidelity to real
    /// transients is wanted instead.
    pub fn new(
        stack: StackConfig,
        floorplan: Floorplan,
        cooling: Cooling,
        params: PowerParams,
        tau_target_s: f64,
    ) -> Self {
        let grid = ThermalGrid::build(stack, floorplan, cooling);
        // Raw dominant time constant: the sink RC plus the stack RC through
        // its internal resistance.
        let sink = grid.sink_node();
        let r_sink = 1.0 / grid.g_ambient()[sink];
        let r_total = grid.logic_to_ambient_resistance();
        let r_internal = (r_total - r_sink).max(0.05);
        let tau_raw =
            grid.capacitance()[sink] * r_sink + grid.total_stack_capacitance() * r_internal;
        let c_scale = (tau_target_s / tau_raw).min(1.0);
        let state = TransientState::new(&grid, AMBIENT_C, c_scale);
        let dram_layers = grid.layers_where(LayerKind::is_dram);
        let logic_layer = grid.layers_where(|k| k == LayerKind::Logic)[0];
        let n = grid.node_count();
        Self {
            grid,
            params,
            state,
            dram_layers,
            logic_layer,
            power_scratch: vec![0.0; n],
        }
    }
}

impl<S: ThermalSolve> HmcThermalModel<S> {
    /// Swaps the solver out (builder style): `make` receives the grid,
    /// the current ambient (°C), and the calibrated capacitance scale,
    /// and builds the replacement — e.g.
    /// `model.with_solver(ReferenceTransient::new)`. The new solver
    /// starts from ambient; swap before stepping.
    pub fn with_solver<S2: ThermalSolve>(
        self,
        make: impl FnOnce(&ThermalGrid, f64, f64) -> S2,
    ) -> HmcThermalModel<S2> {
        let state = make(&self.grid, self.state.ambient_c(), self.state.c_scale());
        HmcThermalModel {
            grid: self.grid,
            params: self.params,
            state,
            dram_layers: self.dram_layers,
            logic_layer: self.logic_layer,
            power_scratch: self.power_scratch,
        }
    }

    /// The solver driving this model.
    pub fn solver(&self) -> &S {
        &self.state
    }

    /// The full temperature field (absolute °C, grid node order) — what
    /// the lockstep oracle snapshots each epoch.
    pub fn temps(&self) -> &[f64] {
        self.state.temps()
    }

    /// The underlying RC grid (for heat-map style inspection).
    pub fn grid(&self) -> &ThermalGrid {
        &self.grid
    }

    /// The power parameters in use.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Mutable access to the power parameters (for what-if studies).
    pub fn params_mut(&mut self) -> &mut PowerParams {
        &mut self.params
    }

    /// Total cube power (W) implied by a traffic sample.
    pub fn total_power_w(&self, sample: &TrafficSample) -> f64 {
        self.params.total_power_w(sample)
    }

    /// Advances the transient state by `sample.window_s` under the power
    /// implied by `sample`, returning the end-of-window readout.
    pub fn step(&mut self, sample: &TrafficSample) -> ThermalReadout {
        self.step_profiled(sample, &mut Profiler::disabled())
    }

    /// Like [`Self::step`], but attributes the power-map build and the
    /// transient solve to `prof`'s `power_map_build` / `thermal_solve`
    /// spans (the co-simulator's `--profile` breakdown).
    pub fn step_profiled(&mut self, sample: &TrafficSample, prof: &mut Profiler) -> ThermalReadout {
        self.step_traced(sample, prof, None)
    }

    /// Like [`Self::step_profiled`], but additionally emits timeline
    /// spans on `trace` when given: a `power_map_build` span, a
    /// `thermal_solve` span, and — through
    /// [`ThermalSolve::step_traced`] — one `sor_substep` child per
    /// solved backward-Euler sub-step.
    pub fn step_traced(
        &mut self,
        sample: &TrafficSample,
        prof: &mut Profiler,
        mut trace: Option<&mut TraceTrack>,
    ) -> ThermalReadout {
        let t = prof.start();
        let tok = trace.as_deref_mut().map(|tr| tr.begin("power_map_build"));
        build_power_map_into(&self.grid, &self.params, sample, &mut self.power_scratch);
        if let (Some(tr), Some(tok)) = (trace.as_deref_mut(), tok) {
            tr.end(tok);
        }
        prof.stop("power_map_build", t);
        let t = prof.start();
        let tok = trace.as_deref_mut().map(|tr| tr.begin("thermal_solve"));
        let p = std::mem::take(&mut self.power_scratch);
        self.state
            .step_traced(&self.grid, &p, sample.window_s, trace.as_deref_mut());
        self.power_scratch = p;
        if let (Some(tr), Some(tok)) = (trace, tok) {
            tr.end(tok);
        }
        prof.stop("thermal_solve", t);
        self.readout()
    }

    /// Jumps directly to the steady state for `sample` (open-loop sweeps,
    /// warm starts) and returns the readout.
    ///
    /// # Panics
    /// Panics with full solve diagnostics on non-convergence — see
    /// [`Self::try_steady_state`] for the fallible form.
    pub fn steady_state(&mut self, sample: &TrafficSample) -> ThermalReadout {
        match self.try_steady_state(sample) {
            Ok(r) => r,
            Err(e) => panic!(
                "thermal steady-state solve failed under {:?} cooling at \
                 {:.1} GB/s ext, {:.2} op/ns PIM: {e}",
                self.grid.cooling,
                sample.ext_bytes_per_s() / 1e9,
                sample.pim_ops_per_ns(),
            ),
        }
    }

    /// Fallible [`Self::steady_state`]: on non-convergence returns the
    /// [`NonConvergence`] diagnostics (sweeps spent, final residual,
    /// tolerance) instead of panicking; the field then holds the partial
    /// solution.
    pub fn try_steady_state(
        &mut self,
        sample: &TrafficSample,
    ) -> Result<ThermalReadout, NonConvergence> {
        build_power_map_into(&self.grid, &self.params, sample, &mut self.power_scratch);
        let p = std::mem::take(&mut self.power_scratch);
        let res = self.state.try_jump_to_steady_state(&self.grid, &p);
        self.power_scratch = p;
        res.map(|_| self.readout())
    }

    /// Cumulative transient-solver work counters (sub-steps, sweeps,
    /// fast-path hits) since construction or the last [`Self::reset`].
    pub fn solver_stats(&self) -> &TransientSolverStats {
        self.state.solver_stats()
    }

    /// Resets all temperatures to ambient and clears the solver counters.
    pub fn reset(&mut self) {
        self.state.reset();
    }

    /// The current readout without advancing time.
    pub fn readout(&self) -> ThermalReadout {
        let t = self.state.temps();
        let cells = self.grid.floorplan.cells();
        let mut peak_dram = f64::NEG_INFINITY;
        let mut sum_dram = 0.0;
        let mut n_dram = 0usize;
        for &layer in &self.dram_layers {
            for c in 0..cells {
                let v = t[self.grid.node(layer, c)];
                peak_dram = peak_dram.max(v);
                sum_dram += v;
                n_dram += 1;
            }
        }
        let mut peak_logic = f64::NEG_INFINITY;
        for c in 0..cells {
            peak_logic = peak_logic.max(t[self.grid.node(self.logic_layer, c)]);
        }
        ThermalReadout {
            peak_dram_c: peak_dram,
            avg_dram_c: sum_dram / n_dram.max(1) as f64,
            peak_logic_c: peak_logic,
            surface_c: t[self.grid.sink_node()],
        }
    }

    /// Temperature field of one layer (row-major `nx × ny`), for heat maps.
    pub fn layer_temps(&self, layer: usize) -> Vec<f64> {
        let cells = self.grid.floorplan.cells();
        (0..cells)
            .map(|c| self.state.temps()[self.grid.node(layer, c)])
            .collect()
    }

    /// Index of the logic layer in the stack.
    pub fn logic_layer(&self) -> usize {
        self.logic_layer
    }

    /// Indices of the DRAM layers in the stack (bottom-up).
    pub fn dram_layers(&self) -> &[usize] {
        &self.dram_layers
    }

    /// Per-vault peak DRAM temperature: for each vault, the maximum over
    /// every DRAM layer of the cells in the vault's footprint. Writes
    /// into `out` (resized to the vault count) so the flight recorder's
    /// sampling path allocates only on the first call.
    ///
    /// The floorplan's vault index is the cube's vault index — the same
    /// alignment the power map relies on when it spreads PIM heat by
    /// per-vault activity weights.
    pub fn vault_peak_dram_temps_into(&self, out: &mut Vec<f64>) {
        let fp = &self.grid.floorplan;
        out.clear();
        out.resize(fp.vaults(), f64::NEG_INFINITY);
        let t = self.state.temps();
        for &layer in &self.dram_layers {
            for c in 0..fp.cells() {
                let v = fp.vault_of_cell(c);
                let temp = t[self.grid.node(layer, c)];
                if temp > out[v] {
                    out[v] = temp;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_full_bandwidth_lands_near_81c() {
        // Paper §III-B: 81 °C peak DRAM at 320 GB/s under commodity cooling.
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let r = m.steady_state(&TrafficSample::external_stream(320.0e9, 1e-3));
        assert!(
            (77.0..86.0).contains(&r.peak_dram_c),
            "peak DRAM {} °C, expected ≈81 °C",
            r.peak_dram_c
        );
    }

    #[test]
    fn commodity_idle_lands_near_33c() {
        // Paper §III-B: 33 °C at idle under commodity cooling.
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let r = m.steady_state(&TrafficSample::idle(1e-3));
        assert!(
            (29.0..38.0).contains(&r.peak_dram_c),
            "idle peak DRAM {} °C, expected ≈33 °C",
            r.peak_dram_c
        );
    }

    #[test]
    fn pim_threshold_rates_match_fig5_shape() {
        // Fig. 5's shape under full external bandwidth: temperature rises
        // roughly linearly with the PIM rate; holding ≤85 °C bounds the
        // rate to a low value, and the 105 °C operating limit caps it a
        // few op/ns higher. The paper reads those crossings at 1.3 and
        // 6.5 op/ns; our Fig-13-calibrated energy puts them lower (see
        // the calibration note in `power.rs`) — the shape test asserts
        // the crossings exist in a band covering both calibrations.
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let mut at = |rate: f64| {
            m.steady_state(&TrafficSample::with_pim(320.0e9, rate, 1e-3))
                .peak_dram_c
        };
        let crossing = |m: &mut dyn FnMut(f64) -> f64, limit: f64| {
            let mut r = 0.0;
            while m(r) < limit && r < 8.0 {
                r += 0.05;
            }
            r
        };
        let r85 = crossing(&mut at, 85.0);
        let r105 = crossing(&mut at, 105.0);
        assert!((0.2..1.5).contains(&r85), "85 °C crossing at {r85} op/ns");
        assert!(
            (2.0..7.0).contains(&r105),
            "105 °C crossing at {r105} op/ns"
        );
        assert!(r105 > 2.0 * r85, "curve must stay roughly linear");
        // Monotone increase.
        let (a, b, c) = (at(1.0), at(2.0), at(3.0));
        assert!(a < b && b < c);
    }

    #[test]
    fn hotter_with_more_bandwidth_and_worse_cooling() {
        let mut commodity = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let mut passive = HmcThermalModel::hmc20(Cooling::Passive);
        let low = commodity.steady_state(&TrafficSample::external_stream(80.0e9, 1e-3));
        let high = commodity.steady_state(&TrafficSample::external_stream(240.0e9, 1e-3));
        assert!(high.peak_dram_c > low.peak_dram_c);
        let p = passive.steady_state(&TrafficSample::external_stream(240.0e9, 1e-3));
        assert!(p.peak_dram_c > high.peak_dram_c);
    }

    #[test]
    fn lowest_dram_die_is_the_hottest() {
        // The paper observes the lowest DRAM die and logic layer reach the
        // highest temperatures (§III-B, Fig. 3).
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        m.steady_state(&TrafficSample::external_stream(320.0e9, 1e-3));
        let layers = m.dram_layers().to_vec();
        let peak_of = |m: &HmcThermalModel, l: usize| {
            m.layer_temps(l)
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let bottom = peak_of(&m, layers[0]);
        let top = peak_of(&m, *layers.last().unwrap());
        assert!(
            bottom > top,
            "bottom die {bottom} °C not hotter than top {top} °C"
        );
    }

    #[test]
    fn transient_approaches_steady_state_within_a_few_tau() {
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let sample = TrafficSample::external_stream(320.0e9, 1e-4);
        let ss = {
            let mut m2 = HmcThermalModel::hmc20(Cooling::CommodityServer);
            m2.steady_state(&TrafficSample::external_stream(320.0e9, 1e-3))
                .peak_dram_c
        };
        // 8 ms = 8 nominal time constants.
        let mut last = ThermalReadout {
            peak_dram_c: 0.0,
            avg_dram_c: 0.0,
            peak_logic_c: 0.0,
            surface_c: 0.0,
        };
        for _ in 0..80 {
            last = m.step(&sample);
        }
        assert!(
            (last.peak_dram_c - ss).abs() < 2.0,
            "after 8 τ: {} vs steady {}",
            last.peak_dram_c,
            ss
        );
    }

    #[test]
    fn vault_hotspot_appears_at_vault_center() {
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        m.steady_state(&TrafficSample::external_stream(320.0e9, 1e-3));
        let logic = m.logic_layer();
        let field = m.layer_temps(logic);
        let fp = &m.grid().floorplan;
        // An interior vault (away from the PHY edge bands): its centre
        // should be hotter than its corner.
        let v = 2 * fp.vaults_x + fp.vaults_x / 2;
        let center = fp.vault_center_cell(v);
        let corner = fp.vault_cells(v)[0];
        assert!(field[center] > field[corner]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::reference::ReferenceTransient;

    #[test]
    fn reset_returns_to_ambient() {
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        m.steady_state(&TrafficSample::external_stream(320.0e9, 1e-3));
        assert!(m.readout().peak_dram_c > 60.0);
        m.reset();
        assert!((m.readout().peak_dram_c - crate::AMBIENT_C).abs() < 1e-9);
    }

    #[test]
    fn total_power_passthrough_matches_params() {
        let m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let s = TrafficSample::with_pim(100.0e9, 1.0, 1e-3);
        assert!((m.total_power_w(&s) - m.params().total_power_w(&s)).abs() < 1e-12);
    }

    #[test]
    fn vault_skew_raises_peak_for_equal_power() {
        let mut uniform = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let mut skewed = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let base = TrafficSample::with_pim(200.0e9, 2.0, 1e-3);
        let r_uniform = uniform.steady_state(&base);
        let mut weights = vec![1.0; 32];
        // Concentrate a third of the activity on four vaults.
        for w in weights.iter_mut().take(4) {
            *w = 5.0;
        }
        let skew = TrafficSample {
            vault_weights: Some(weights),
            ..base.clone()
        };
        let r_skew = skewed.steady_state(&skew);
        assert!(
            r_skew.peak_dram_c > r_uniform.peak_dram_c,
            "skewed {} !> uniform {}",
            r_skew.peak_dram_c,
            r_uniform.peak_dram_c
        );
    }

    #[test]
    fn surface_is_cooler_than_die_under_load() {
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let r = m.steady_state(&TrafficSample::external_stream(320.0e9, 1e-3));
        assert!(r.surface_c < r.avg_dram_c);
        assert!(r.avg_dram_c < r.peak_dram_c);
    }

    #[test]
    fn profiled_step_matches_plain_step_and_records_spans() {
        let mut plain = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let mut profiled = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let sample = TrafficSample::external_stream(200.0e9, 1e-4);
        let mut prof = Profiler::enabled();
        for _ in 0..5 {
            let a = plain.step(&sample);
            let b = profiled.step_profiled(&sample, &mut prof);
            assert_eq!(a, b, "profiling must not change the physics");
        }
        let report = prof.finish();
        assert!(report.span_s("power_map_build") > 0.0);
        assert!(report.span_s("thermal_solve") > 0.0);
    }

    #[test]
    fn step_duration_zero_is_a_noop() {
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        let before = m.readout();
        m.step(&TrafficSample::idle(0.0));
        let after = m.readout();
        assert!((before.peak_dram_c - after.peak_dram_c).abs() < 1e-12);
    }

    #[test]
    fn swapped_reference_solver_reaches_the_same_steady_state() {
        let mut opt = HmcThermalModel::hmc11(Cooling::LowEndActive);
        let mut reference =
            HmcThermalModel::hmc11(Cooling::LowEndActive).with_solver(ReferenceTransient::new);
        assert_eq!(reference.solver().name(), "reference-gs");
        let s = TrafficSample::external_stream(120.0e9, 1e-3);
        let a = opt.steady_state(&s);
        let b = reference.steady_state(&s);
        assert!(
            (a.peak_dram_c - b.peak_dram_c).abs() < 1e-3,
            "optimized {} vs reference {}",
            a.peak_dram_c,
            b.peak_dram_c
        );
        assert_eq!(reference.temps().len(), reference.grid().node_count());
        reference.reset();
        assert!((reference.readout().peak_dram_c - crate::AMBIENT_C).abs() < 1e-9);
    }

    #[test]
    fn per_vault_peaks_cover_the_grid_and_single_out_hot_vaults() {
        let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
        // Concentrate all PIM activity on vault 5: its footprint must be
        // the hottest, and the max over vaults must equal the readout.
        let vaults = m.grid().floorplan.vaults();
        let mut weights = vec![0.0; vaults];
        weights[5] = 1.0;
        let sample = TrafficSample {
            window_s: 1e-3,
            ext_bytes: 0.0,
            pim_ops: 5e6,
            vault_weights: Some(weights),
        };
        m.steady_state(&sample);
        let mut per_vault = Vec::new();
        m.vault_peak_dram_temps_into(&mut per_vault);
        assert_eq!(per_vault.len(), vaults);
        let hottest = per_vault
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(v, _)| v)
            .unwrap();
        assert_eq!(hottest, 5, "heat should concentrate over the active vault");
        let max = per_vault.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let readout = m.readout();
        assert!(
            (max - readout.peak_dram_c).abs() < 1e-9,
            "vault-wise max {max} must equal the cube peak {}",
            readout.peak_dram_c
        );
        // The scratch vector is reused without growing.
        m.vault_peak_dram_temps_into(&mut per_vault);
        assert_eq!(per_vault.len(), vaults);
    }
}
