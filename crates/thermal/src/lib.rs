//! # coolpim-thermal
//!
//! Power modelling and compact 3D thermal simulation for HMC-class
//! die-stacked memory cubes, in the style of KitFox + 3D-ICE as used by the
//! CoolPIM paper (IPDPS 2018).
//!
//! The crate provides:
//!
//! * a material/geometry description of a die stack ([`layers`], [`materials`]),
//! * a vault-grid floorplan that localises power injection ([`floorplan`]),
//! * an RC thermal network assembled from the stack ([`grid`]),
//! * steady-state and transient solvers ([`solver`]),
//! * a traffic-to-power model with the paper's published energy constants
//!   ([`power`]),
//! * a cooling-solution library reproducing Table II of the paper
//!   ([`cooling`]),
//! * a high-level [`model::HmcThermalModel`] façade used by the
//!   co-simulator — generic over the [`solver::ThermalSolve`] seam so any
//!   conforming solver can be swapped in,
//! * the canonical plain-Gauss–Seidel reference solver the optimized one
//!   is validated against ([`reference`]), and
//! * HMC 1.1 prototype calibration data for reproducing Figures 1 and 2
//!   ([`hmc11`]).
//!
//! ## Unit conventions
//!
//! All temperatures are degrees Celsius (`f64`), power is Watts, energy is
//! Joules, geometry is metres, and time is seconds unless a name says
//! otherwise.
//!
//! ## Quick example
//!
//! ```
//! use coolpim_thermal::cooling::Cooling;
//! use coolpim_thermal::model::HmcThermalModel;
//! use coolpim_thermal::power::TrafficSample;
//!
//! // HMC 2.0 cube under a commodity-server active heat sink.
//! let mut model = HmcThermalModel::hmc20(Cooling::CommodityServer);
//! // Drive 320 GB/s of external data traffic for 10 ms.
//! let sample = TrafficSample::external_stream(320.0e9, 1e-3);
//! let mut readout = model.steady_state(&sample);
//! assert!(readout.peak_dram_c > 70.0 && readout.peak_dram_c < 90.0);
//! // Idle cube is much cooler.
//! readout = model.steady_state(&TrafficSample::idle(1e-3));
//! assert!(readout.peak_dram_c < 45.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cooling;
pub mod floorplan;
pub mod grid;
pub mod hmc11;
pub mod layers;
pub mod materials;
pub mod model;
pub mod power;
pub mod reference;
pub mod solver;

pub use cooling::Cooling;
pub use model::{HmcThermalModel, ThermalReadout};
pub use power::TrafficSample;
pub use reference::ReferenceTransient;
pub use solver::ThermalSolve;

/// Default ambient temperature used throughout the paper reproduction (°C).
pub const AMBIENT_C: f64 = 25.0;

/// Upper bound of the DRAM normal operating temperature range (°C).
///
/// Above this the JEDEC extended range applies (doubled refresh) and the
/// paper's HMC model derates DRAM frequency by 20 %.
pub const NORMAL_TEMP_LIMIT_C: f64 = 85.0;

/// Upper bound of the extended operating range (°C); a second derating
/// phase applies between this and [`SHUTDOWN_TEMP_C`].
pub const EXTENDED_TEMP_LIMIT_C: f64 = 95.0;

/// The HMC operating limit (°C): the cube shuts down above this.
pub const SHUTDOWN_TEMP_C: f64 = 105.0;
