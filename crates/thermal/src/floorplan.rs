//! Vault-grid floorplan: maps architectural power sources (vault
//! controllers, PIM functional units, DRAM partitions, link PHYs) onto the
//! cells of the thermal grid.
//!
//! HMC organises the cube into vaults laid out in a regular grid on every
//! layer; each vault's controller and PIM FU sit at the *centre* of its
//! logic-layer footprint (the paper places "a vault controller and a
//! functional unit at the center" of each vault and observes hot spots
//! there, Fig. 3). Link SerDes PHYs occupy the two short edges of the
//! logic die.

/// Floorplan of one die: a `nx × ny` cell grid partitioned into vaults.
#[derive(Debug, Clone)]
pub struct Floorplan {
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Vaults along x.
    pub vaults_x: usize,
    /// Vaults along y.
    pub vaults_y: usize,
    /// Width of the link-PHY column band on each short edge, in cells.
    pub phy_cols: usize,
}

/// Cells-per-vault edge used by the presets (3×3 cells per vault resolves
/// a distinct vault-centre hot spot).
pub const CELLS_PER_VAULT: usize = 3;

impl Floorplan {
    /// HMC 2.0 floorplan: 32 vaults in an 8×4 grid. The four full-width
    /// links of HMC 2.0 occupy a two-cell-wide PHY band on each short edge.
    pub fn hmc20() -> Self {
        let mut fp = Self::vault_grid(8, 4);
        fp.phy_cols = 2;
        fp
    }

    /// HMC 1.1 floorplan: 16 vaults in a 4×4 grid.
    pub fn hmc11() -> Self {
        Self::vault_grid(4, 4)
    }

    /// A floorplan with `vx × vy` vaults at [`CELLS_PER_VAULT`] resolution.
    pub fn vault_grid(vx: usize, vy: usize) -> Self {
        assert!(vx > 0 && vy > 0);
        Self {
            nx: vx * CELLS_PER_VAULT,
            ny: vy * CELLS_PER_VAULT,
            vaults_x: vx,
            vaults_y: vy,
            phy_cols: 1,
        }
    }

    /// Number of cells per layer.
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Number of vaults.
    pub fn vaults(&self) -> usize {
        self.vaults_x * self.vaults_y
    }

    /// Linear cell index for `(x, y)`.
    pub fn cell(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny);
        y * self.nx + x
    }

    /// The cell indices forming vault `v`'s footprint (row-major over the
    /// vault's rectangle).
    pub fn vault_cells(&self, v: usize) -> Vec<usize> {
        let (x0, y0) = self.vault_origin(v);
        let mut cells = Vec::with_capacity(CELLS_PER_VAULT * CELLS_PER_VAULT);
        for dy in 0..CELLS_PER_VAULT {
            for dx in 0..CELLS_PER_VAULT {
                cells.push(self.cell(x0 + dx, y0 + dy));
            }
        }
        cells
    }

    /// The centre cell of vault `v` (where its controller + FU sit).
    pub fn vault_center_cell(&self, v: usize) -> usize {
        let (x0, y0) = self.vault_origin(v);
        self.cell(x0 + CELLS_PER_VAULT / 2, y0 + CELLS_PER_VAULT / 2)
    }

    /// Cells of the link-PHY bands (the `phy_cols` leftmost and rightmost
    /// columns of the die).
    pub fn phy_cells(&self) -> Vec<usize> {
        let mut cells = Vec::with_capacity(2 * self.phy_cols * self.ny);
        for y in 0..self.ny {
            for c in 0..self.phy_cols {
                cells.push(self.cell(c, y));
                cells.push(self.cell(self.nx - 1 - c, y));
            }
        }
        cells
    }

    /// Which vault a cell belongs to.
    pub fn vault_of_cell(&self, cell: usize) -> usize {
        let x = cell % self.nx;
        let y = cell / self.nx;
        let vx = x / CELLS_PER_VAULT;
        let vy = y / CELLS_PER_VAULT;
        vy * self.vaults_x + vx
    }

    fn vault_origin(&self, v: usize) -> (usize, usize) {
        assert!(v < self.vaults(), "vault {v} out of range");
        let vx = v % self.vaults_x;
        let vy = v / self.vaults_x;
        (vx * CELLS_PER_VAULT, vy * CELLS_PER_VAULT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmc20_has_32_vaults() {
        let f = Floorplan::hmc20();
        assert_eq!(f.vaults(), 32);
        assert_eq!(f.cells(), 24 * 12);
    }

    #[test]
    fn vault_cells_partition_the_grid() {
        let f = Floorplan::hmc20();
        let mut seen = vec![false; f.cells()];
        for v in 0..f.vaults() {
            for c in f.vault_cells(v) {
                assert!(!seen[c], "cell {c} in two vaults");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every cell belongs to a vault");
    }

    #[test]
    fn vault_center_is_inside_vault() {
        let f = Floorplan::hmc11();
        for v in 0..f.vaults() {
            let center = f.vault_center_cell(v);
            assert!(f.vault_cells(v).contains(&center));
            assert_eq!(f.vault_of_cell(center), v);
        }
    }

    #[test]
    fn vault_of_cell_inverts_vault_cells() {
        let f = Floorplan::hmc20();
        for v in 0..f.vaults() {
            for c in f.vault_cells(v) {
                assert_eq!(f.vault_of_cell(c), v);
            }
        }
    }

    #[test]
    fn phy_cells_are_on_the_edges() {
        let f = Floorplan::hmc20();
        for c in f.phy_cells() {
            let x = c % f.nx;
            assert!(x < f.phy_cols || x >= f.nx - f.phy_cols);
        }
        assert_eq!(f.phy_cells().len(), 2 * f.phy_cols * f.ny);
        let f11 = Floorplan::hmc11();
        assert_eq!(f11.phy_cells().len(), 2 * f11.ny);
    }
}
