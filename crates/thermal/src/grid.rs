//! Assembly of the compact RC thermal network from a stack description,
//! a floorplan, and a cooling solution (the 3D-ICE-style model).
//!
//! Every layer is discretised into the floorplan's `nx × ny` cells; a cell
//! is one thermal node with a capacitance and conductances to its four
//! lateral neighbours and the cells above/below. Vertical conductances
//! include the bonding interface between dies. On top of the TIM sits a
//! single lumped heat-sink node (isothermal copper base/spreader) that
//! couples to ambient through the cooling solution's thermal resistance.
//! The substrate couples weakly to ambient through the board (secondary
//! heat path).

use crate::cooling::Cooling;
use crate::floorplan::Floorplan;
use crate::layers::{LayerKind, StackConfig};

/// One directed conductance edge of the network.
#[derive(Debug, Clone, Copy)]
struct Edge {
    /// Neighbour node index.
    other: u32,
    /// Conductance in W/K.
    g: f64,
}

/// The assembled RC network.
///
/// Node layout: `layer * cells + cell` for all stack layers bottom-to-top,
/// followed by one extra node for the heat-sink base. Ambient is a fixed
/// boundary temperature, not a node.
#[derive(Debug, Clone)]
pub struct ThermalGrid {
    /// Stack the grid was built from.
    pub stack: StackConfig,
    /// Floorplan the grid was built from.
    pub floorplan: Floorplan,
    /// Cooling solution (sets the sink-to-ambient conductance).
    pub cooling: Cooling,
    /// Per-node heat capacitance (J/K), unscaled.
    capacitance: Vec<f64>,
    /// Adjacency: for each node, the index range into `edges`.
    edge_offsets: Vec<u32>,
    edges: Vec<Edge>,
    /// Per-node conductance directly to ambient (W/K).
    g_ambient: Vec<f64>,
    /// Cached per-node total conductance (Σ edges + ambient), for solvers.
    g_total: Vec<f64>,
    /// Red-black node ordering for the Gauss–Seidel solvers: all nodes of
    /// one lattice parity, then the other, sink last (it touches both
    /// colours). Precomputed once so solves never allocate it.
    rb_order: Vec<u32>,
}

impl ThermalGrid {
    /// Builds the RC network for `stack` × `floorplan` under `cooling`.
    pub fn build(stack: StackConfig, floorplan: Floorplan, cooling: Cooling) -> Self {
        let cells = floorplan.cells();
        let n_layers = stack.layers.len();
        let n = n_layers * cells + 1; // +1 sink node
        let sink = n - 1;

        let dx = stack.die_w / floorplan.nx as f64;
        let dy = stack.die_h / floorplan.ny as f64;
        let a_cell = dx * dy;

        let mut adj: Vec<Vec<Edge>> = vec![Vec::with_capacity(6); n];
        let mut capacitance = vec![0.0; n];
        let mut g_ambient = vec![0.0; n];

        let add_edge = |adj: &mut Vec<Vec<Edge>>, a: usize, b: usize, g: f64| {
            adj[a].push(Edge { other: b as u32, g });
            adj[b].push(Edge { other: a as u32, g });
        };

        for (li, layer) in stack.layers.iter().enumerate() {
            let k = layer.material.conductivity;
            let t = layer.thickness;
            for yc in 0..floorplan.ny {
                for xc in 0..floorplan.nx {
                    let cell = floorplan.cell(xc, yc);
                    let node = li * cells + cell;
                    capacitance[node] = layer.material.volumetric_capacity * a_cell * t;
                    // Lateral edges to +x and +y neighbours only (each edge
                    // added once).
                    if xc + 1 < floorplan.nx {
                        let g = k * (t * dy) / dx;
                        add_edge(&mut adj, node, node + 1, g);
                    }
                    if yc + 1 < floorplan.ny {
                        let g = k * (t * dx) / dy;
                        add_edge(&mut adj, node, node + floorplan.nx, g);
                    }
                    // Vertical edge to the layer above.
                    if li + 1 < n_layers {
                        let upper = &stack.layers[li + 1];
                        let mut r =
                            t / (2.0 * k) + upper.thickness / (2.0 * upper.material.conductivity);
                        if let Some((ti, mi)) = upper.interface_below {
                            r += ti / mi.conductivity;
                        }
                        add_edge(&mut adj, node, node + cells, a_cell / r);
                    } else {
                        // Top layer (TIM) couples to the sink node through
                        // its remaining half thickness.
                        let r = t / (2.0 * k);
                        add_edge(&mut adj, node, sink, a_cell / r);
                    }
                    // Bottom layer couples weakly to ambient via the board.
                    if li == 0 {
                        g_ambient[node] = 1.0 / (stack.board_resistance * cells as f64);
                    }
                }
            }
        }

        // Sink node.
        capacitance[sink] = stack.sink_capacitance;
        g_ambient[sink] = 1.0 / cooling.resistance_c_per_w();

        // Flatten adjacency into CSR form.
        let mut edge_offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        edge_offsets.push(0u32);
        for list in &adj {
            edges.extend_from_slice(list);
            edge_offsets.push(edges.len() as u32);
        }
        let g_total: Vec<f64> = (0..n)
            .map(|i| {
                let s = edge_offsets[i] as usize..edge_offsets[i + 1] as usize;
                edges[s].iter().map(|e| e.g).sum::<f64>() + g_ambient[i]
            })
            .collect();

        // Red-black ordering: (x + y + layer) parity colours the lattice
        // so no two same-colour cells are neighbours; the sink (adjacent
        // to every top-layer cell) goes last.
        let mut rb_order = Vec::with_capacity(n);
        for parity in 0..2usize {
            for (li, _) in stack.layers.iter().enumerate() {
                for yc in 0..floorplan.ny {
                    for xc in 0..floorplan.nx {
                        if (xc + yc + li) % 2 == parity {
                            rb_order.push((li * cells + floorplan.cell(xc, yc)) as u32);
                        }
                    }
                }
            }
        }
        rb_order.push(sink as u32);

        Self {
            stack,
            floorplan,
            cooling,
            capacitance,
            edge_offsets,
            edges,
            g_ambient,
            g_total,
            rb_order,
        }
    }

    /// Total node count (including the sink node).
    pub fn node_count(&self) -> usize {
        self.capacitance.len()
    }

    /// Index of the lumped heat-sink node.
    pub fn sink_node(&self) -> usize {
        self.node_count() - 1
    }

    /// Node index for `(layer, cell)`.
    pub fn node(&self, layer: usize, cell: usize) -> usize {
        debug_assert!(layer < self.stack.layers.len());
        debug_assert!(cell < self.floorplan.cells());
        layer * self.floorplan.cells() + cell
    }

    /// Layer indices whose kind satisfies `pred`.
    pub fn layers_where(&self, pred: impl Fn(LayerKind) -> bool) -> Vec<usize> {
        self.stack
            .layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| pred(l.kind).then_some(i))
            .collect()
    }

    /// Per-node capacitance (J/K), before any transient time scaling.
    pub fn capacitance(&self) -> &[f64] {
        &self.capacitance
    }

    /// Per-node conductance to ambient (W/K).
    pub fn g_ambient(&self) -> &[f64] {
        &self.g_ambient
    }

    /// Per-node total conductance (W/K).
    pub fn g_total(&self) -> &[f64] {
        &self.g_total
    }

    /// The precomputed red-black Gauss–Seidel sweep order: every node
    /// exactly once, one lattice colour first, then the other, sink last.
    /// Same-colour interior nodes share no edge, so a sweep in this order
    /// propagates fresh values colour-to-colour (classic red-black SOR).
    pub fn rb_order(&self) -> &[u32] {
        &self.rb_order
    }

    /// Iterates `(neighbour, conductance)` pairs of `node`.
    pub fn neighbours(&self, node: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let s = self.edge_offsets[node] as usize..self.edge_offsets[node + 1] as usize;
        self.edges[s].iter().map(|e| (e.other as usize, e.g))
    }

    /// Σ capacitance of all stack nodes (J/K) — used to pick the transient
    /// time-scaling factor.
    pub fn total_stack_capacitance(&self) -> f64 {
        self.capacitance[..self.node_count() - 1].iter().sum()
    }

    /// Effective steady-state resistance (°C/W) from a uniform logic-layer
    /// power injection to ambient. Diagnostic used by calibration tests.
    pub fn logic_to_ambient_resistance(&self) -> f64 {
        let logic = self.layers_where(|k| k == LayerKind::Logic)[0];
        let cells = self.floorplan.cells();
        let mut p = vec![0.0; self.node_count()];
        let watts = 1.0;
        for c in 0..cells {
            p[self.node(logic, c)] = watts / cells as f64;
        }
        let t = crate::solver::steady_state(self, &p, 0.0);
        let avg: f64 = (0..cells).map(|c| t[self.node(logic, c)]).sum::<f64>() / cells as f64;
        avg / watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::layers::StackConfig;

    fn grid() -> ThermalGrid {
        ThermalGrid::build(
            StackConfig::hmc20(),
            Floorplan::hmc20(),
            Cooling::CommodityServer,
        )
    }

    #[test]
    fn node_count_is_layers_times_cells_plus_sink() {
        let g = grid();
        assert_eq!(
            g.node_count(),
            g.stack.layers.len() * g.floorplan.cells() + 1
        );
    }

    #[test]
    fn conductances_are_symmetric_and_positive() {
        let g = grid();
        for node in 0..g.node_count() {
            for (nb, cond) in g.neighbours(node) {
                assert!(cond > 0.0);
                let back: Vec<_> = g.neighbours(nb).filter(|&(o, _)| o == node).collect();
                assert_eq!(back.len(), 1, "edge {node}->{nb} not symmetric");
                assert!((back[0].1 - cond).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn sink_couples_to_ambient_with_cooling_resistance() {
        let g = grid();
        let sink = g.sink_node();
        assert!((g.g_ambient()[sink] - 1.0 / 0.5).abs() < 1e-12);
    }

    #[test]
    fn every_stack_node_reaches_the_sink() {
        // Connectivity check: BFS from the sink reaches all nodes.
        let g = grid();
        let mut seen = vec![false; g.node_count()];
        let mut queue = vec![g.sink_node()];
        seen[g.sink_node()] = true;
        while let Some(n) = queue.pop() {
            for (nb, _) in g.neighbours(n) {
                if !seen[nb] {
                    seen[nb] = true;
                    queue.push(nb);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn logic_to_ambient_resistance_is_near_calibration_target() {
        // DESIGN.md §6: sink 0.5 °C/W + internal ≈ 1.3 °C/W.
        let r = grid().logic_to_ambient_resistance();
        assert!((1.1..2.0).contains(&r), "R_logic→amb = {r} °C/W");
    }
}
