//! Traffic-to-power model with the CoolPIM paper's published energy
//! constants (§V-A) and the calibration from DESIGN.md §6.
//!
//! Average energies per transferred bit are 3.7 pJ/bit for the DRAM layers
//! and 6.78 pJ/bit for the logic layer (Micron figures quoted by the
//! paper). Each PIM operation additionally performs an internal
//! read-modify-write — an activate/read/FU/write/precharge round trip —
//! whose energy is the `pim_op_*` constants below.
//!
//! Calibration note: the paper's Fig. 5 (≈3.7 °C per op/ns) and its
//! Fig. 13 workload temperatures (naïve offloading at 3–4 op/ns reaching
//! 90–95 °C at sub-saturated bandwidth, implying ≈5 °C per op/ns) are not
//! satisfiable by one linear model. We calibrate to the evaluation
//! figures (10–14) — 7 nJ per PIM op, defensible as two random row
//! activations plus the RD/WR column ops and the FU — which shifts
//! Fig. 5's absolute crossings left (85 °C at ≈0.5 op/ns, 105 °C at
//! ≈2.75) while preserving its shape. EXPERIMENTS.md records the
//! discrepancy.

use crate::floorplan::Floorplan;
use crate::grid::ThermalGrid;
use crate::layers::LayerKind;

/// Energy per bit moved through the DRAM layers (J/bit): 3.7 pJ/bit.
pub const DRAM_PJ_PER_BIT: f64 = 3.7e-12;
/// Energy per bit handled by the logic layer (J/bit): 6.78 pJ/bit.
pub const LOGIC_PJ_PER_BIT: f64 = 6.78e-12;

/// Parameters of the cube power model.
#[derive(Debug, Clone, Copy)]
pub struct PowerParams {
    /// Static (traffic-independent) power: SerDes PHY bias, PLLs, refresh
    /// baseline (W).
    pub static_w: f64,
    /// DRAM-layer energy per externally transferred bit (J/bit).
    pub dram_j_per_bit: f64,
    /// Logic-layer energy per externally transferred bit (J/bit).
    pub logic_j_per_bit: f64,
    /// DRAM-side energy per PIM operation (internal ACT/RD/WR/PRE), J/op.
    pub pim_op_dram_j: f64,
    /// Logic-side energy per PIM operation (vault controller + 128-bit
    /// functional unit), J/op.
    pub pim_op_logic_j: f64,
    /// Fraction of static power dissipated in the link-PHY edge bands.
    pub static_phy_fraction: f64,
    /// Fraction of dynamic logic power dissipated in the link-PHY bands
    /// (the rest goes to the vaults).
    pub logic_phy_fraction: f64,
    /// Of a vault's logic power, the fraction concentrated on the centre
    /// cell (controller + FU); the remainder spreads over the vault
    /// footprint (switch wiring, TSV drivers).
    pub vault_center_fraction: f64,
}

impl PowerParams {
    /// HMC 2.0 parameters (DESIGN.md §6 calibration).
    pub fn hmc20() -> Self {
        Self {
            static_w: 4.5,
            dram_j_per_bit: DRAM_PJ_PER_BIT,
            logic_j_per_bit: LOGIC_PJ_PER_BIT,
            pim_op_dram_j: 5.4e-9,
            pim_op_logic_j: 1.6e-9,
            static_phy_fraction: 0.6,
            logic_phy_fraction: 0.5,
            vault_center_fraction: 0.5,
        }
    }

    /// HMC 1.1 prototype parameters: higher static power (11.5 W — the
    /// prototype idles hot, Fig. 1) and an older process with higher
    /// per-bit energy (14.4 pJ/bit split across layers), giving ≈+6.9 W at
    /// the 60 GB/s peak.
    pub fn hmc11() -> Self {
        Self {
            static_w: 11.5,
            dram_j_per_bit: 5.2e-12,
            logic_j_per_bit: 9.2e-12,
            pim_op_dram_j: 0.0, // HMC 1.1 has no PIM capability
            pim_op_logic_j: 0.0,
            static_phy_fraction: 0.6,
            logic_phy_fraction: 0.5,
            vault_center_fraction: 0.5,
        }
    }

    /// Total cube power (W) for a traffic sample — the lumped figure used
    /// by quick estimates and reports.
    pub fn total_power_w(&self, s: &TrafficSample) -> f64 {
        let bits_per_s = s.ext_bytes_per_s() * 8.0;
        self.static_w
            + bits_per_s * (self.dram_j_per_bit + self.logic_j_per_bit)
            + s.pim_ops_per_s() * (self.pim_op_dram_j + self.pim_op_logic_j)
    }
}

/// A window of observed cube activity, produced by the memory-system model
/// (or synthesised for open-loop sweeps).
#[derive(Debug, Clone)]
pub struct TrafficSample {
    /// Window length in seconds.
    pub window_s: f64,
    /// External data bytes moved over the links during the window
    /// (read + write payload).
    pub ext_bytes: f64,
    /// PIM operations executed during the window.
    pub pim_ops: f64,
    /// Optional per-vault activity weights (any non-negative vector; it is
    /// normalised). `None` means uniform across vaults.
    pub vault_weights: Option<Vec<f64>>,
}

impl TrafficSample {
    /// An idle window of `window_s` seconds.
    pub fn idle(window_s: f64) -> Self {
        Self {
            window_s,
            ext_bytes: 0.0,
            pim_ops: 0.0,
            vault_weights: None,
        }
    }

    /// A pure external-bandwidth stream: `bytes_per_s` for `window_s`.
    pub fn external_stream(bytes_per_s: f64, window_s: f64) -> Self {
        Self {
            window_s,
            ext_bytes: bytes_per_s * window_s,
            pim_ops: 0.0,
            vault_weights: None,
        }
    }

    /// A mixed stream: external bandwidth plus a PIM offloading rate in
    /// operations per nanosecond (the paper's unit).
    pub fn with_pim(bytes_per_s: f64, pim_ops_per_ns: f64, window_s: f64) -> Self {
        Self {
            window_s,
            ext_bytes: bytes_per_s * window_s,
            pim_ops: pim_ops_per_ns * 1e9 * window_s,
            vault_weights: None,
        }
    }

    /// Average external data bandwidth over the window (bytes/s).
    pub fn ext_bytes_per_s(&self) -> f64 {
        if self.window_s == 0.0 {
            0.0
        } else {
            self.ext_bytes / self.window_s
        }
    }

    /// Average PIM rate over the window (op/s).
    pub fn pim_ops_per_s(&self) -> f64 {
        if self.window_s == 0.0 {
            0.0
        } else {
            self.pim_ops / self.window_s
        }
    }

    /// Average PIM rate in the paper's op/ns unit.
    pub fn pim_ops_per_ns(&self) -> f64 {
        self.pim_ops_per_s() / 1e9
    }
}

/// Builds the per-node power vector for a traffic sample.
///
/// Power routing:
/// * static: `static_phy_fraction` into the logic-layer PHY bands, the rest
///   uniform over the logic layer;
/// * dynamic logic (per-bit + PIM logic energy): `logic_phy_fraction` into
///   the PHY bands, the rest onto vault-centre cells weighted by vault
///   activity;
/// * dynamic DRAM (per-bit + PIM DRAM energy): spread evenly over the DRAM
///   dies, within each die over vault footprints weighted by activity.
pub fn build_power_map(
    grid: &ThermalGrid,
    params: &PowerParams,
    sample: &TrafficSample,
) -> Vec<f64> {
    let mut power = Vec::new();
    build_power_map_into(grid, params, sample, &mut power);
    power
}

/// [`build_power_map`] writing into a reusable buffer: `power` is cleared
/// and resized to the node count, so a correctly-sized buffer is refilled
/// without allocating — the co-simulator calls this every thermal epoch.
#[allow(clippy::needless_range_loop)] // vault loops index two parallel maps
pub fn build_power_map_into(
    grid: &ThermalGrid,
    params: &PowerParams,
    sample: &TrafficSample,
    power: &mut Vec<f64>,
) {
    let fp = &grid.floorplan;
    power.clear();
    power.resize(grid.node_count(), 0.0);

    let bits_per_s = sample.ext_bytes_per_s() * 8.0;
    let ops_per_s = sample.pim_ops_per_s();

    let p_logic_dyn = bits_per_s * params.logic_j_per_bit + ops_per_s * params.pim_op_logic_j;
    let p_dram_dyn = bits_per_s * params.dram_j_per_bit + ops_per_s * params.pim_op_dram_j;

    let weights = normalised_vault_weights(fp, sample.vault_weights.as_deref());

    let logic_layers = grid.layers_where(|k| k == LayerKind::Logic);
    let dram_layers = grid.layers_where(LayerKind::is_dram);
    assert_eq!(logic_layers.len(), 1, "expected exactly one logic layer");
    let logic = logic_layers[0];

    // Static power on the logic layer.
    let phy = fp.phy_cells();
    let p_static_phy = params.static_w * params.static_phy_fraction / phy.len() as f64;
    for &c in &phy {
        power[grid.node(logic, c)] += p_static_phy;
    }
    let p_static_uniform = params.static_w * (1.0 - params.static_phy_fraction) / fp.cells() as f64;
    for c in 0..fp.cells() {
        power[grid.node(logic, c)] += p_static_uniform;
    }

    // Dynamic logic power: PHY share + vault-centre share.
    let p_logic_phy = p_logic_dyn * params.logic_phy_fraction / phy.len() as f64;
    for &c in &phy {
        power[grid.node(logic, c)] += p_logic_phy;
    }
    let p_logic_vault = p_logic_dyn * (1.0 - params.logic_phy_fraction);
    for v in 0..fp.vaults() {
        let vault_power = p_logic_vault * weights[v];
        let center = fp.vault_center_cell(v);
        power[grid.node(logic, center)] += vault_power * params.vault_center_fraction;
        let cells = fp.vault_cells(v);
        let spread = vault_power * (1.0 - params.vault_center_fraction) / cells.len() as f64;
        for c in cells {
            power[grid.node(logic, c)] += spread;
        }
    }

    // Dynamic DRAM power: even across dies, vault-weighted within a die.
    if !dram_layers.is_empty() {
        let per_die = p_dram_dyn / dram_layers.len() as f64;
        for &layer in &dram_layers {
            for v in 0..fp.vaults() {
                let cells = fp.vault_cells(v);
                let per_cell = per_die * weights[v] / cells.len() as f64;
                for c in cells {
                    power[grid.node(layer, c)] += per_cell;
                }
            }
        }
    }
}

fn normalised_vault_weights(fp: &Floorplan, raw: Option<&[f64]>) -> Vec<f64> {
    let vaults = fp.vaults();
    match raw {
        None => vec![1.0 / vaults as f64; vaults],
        Some(w) => {
            assert_eq!(w.len(), vaults, "vault weight vector length mismatch");
            let sum: f64 = w.iter().copied().sum();
            assert!(
                w.iter().all(|&x| x >= 0.0),
                "vault weights must be non-negative"
            );
            if sum <= 0.0 {
                vec![1.0 / vaults as f64; vaults]
            } else {
                w.iter().map(|&x| x / sum).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooling::Cooling;
    use crate::layers::StackConfig;

    fn grid() -> ThermalGrid {
        ThermalGrid::build(
            StackConfig::hmc20(),
            Floorplan::hmc20(),
            Cooling::CommodityServer,
        )
    }

    #[test]
    fn full_bandwidth_dynamic_power_matches_paper_arithmetic() {
        // 320 GB/s × 8 × (3.7 + 6.78) pJ/bit ≈ 26.8 W dynamic.
        let p = PowerParams::hmc20();
        let s = TrafficSample::external_stream(320.0e9, 1e-3);
        let total = p.total_power_w(&s);
        let dynamic = total - p.static_w;
        assert!((dynamic - 26.8).abs() < 0.3, "dynamic {dynamic} W");
    }

    #[test]
    fn power_map_sums_to_total_power() {
        let g = grid();
        let params = PowerParams::hmc20();
        let s = TrafficSample::with_pim(200.0e9, 2.0, 1e-3);
        let map = build_power_map(&g, &params, &s);
        let sum: f64 = map.iter().sum();
        assert!((sum - params.total_power_w(&s)).abs() < 1e-9 * sum.max(1.0));
    }

    #[test]
    fn idle_map_is_static_only_on_logic() {
        let g = grid();
        let params = PowerParams::hmc20();
        let map = build_power_map(&g, &params, &TrafficSample::idle(1e-3));
        let sum: f64 = map.iter().sum();
        assert!((sum - params.static_w).abs() < 1e-12);
        // No power on DRAM layers when idle.
        for layer in g.layers_where(LayerKind::is_dram) {
            for c in 0..g.floorplan.cells() {
                assert_eq!(map[g.node(layer, c)], 0.0);
            }
        }
    }

    #[test]
    fn skewed_vault_weights_skew_the_map() {
        let g = grid();
        let params = PowerParams::hmc20();
        let mut weights = vec![0.0; g.floorplan.vaults()];
        weights[0] = 1.0;
        let s = TrafficSample {
            window_s: 1e-3,
            ext_bytes: 320.0e9 * 1e-3,
            pim_ops: 0.0,
            vault_weights: Some(weights),
        };
        let map = build_power_map(&g, &params, &s);
        let logic = g.layers_where(|k| k == LayerKind::Logic)[0];
        let v0_center = g.floorplan.vault_center_cell(0);
        let v5_center = g.floorplan.vault_center_cell(5);
        assert!(map[g.node(logic, v0_center)] > map[g.node(logic, v5_center)]);
    }

    #[test]
    fn pim_rate_units_round_trip() {
        let s = TrafficSample::with_pim(0.0, 1.3, 2e-3);
        assert!((s.pim_ops_per_ns() - 1.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_weight_length_panics() {
        let g = grid();
        let params = PowerParams::hmc20();
        let s = TrafficSample {
            window_s: 1e-3,
            ext_bytes: 0.0,
            pim_ops: 0.0,
            vault_weights: Some(vec![1.0; 3]),
        };
        let _ = build_power_map(&g, &params, &s);
    }
}
