use coolpim_thermal::cooling::Cooling;
use coolpim_thermal::hmc11::{run_fig1, run_fig2};
use coolpim_thermal::model::HmcThermalModel;
use coolpim_thermal::power::TrafficSample;

fn main() {
    let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
    println!(
        "R logic->amb (commodity): {:.3}",
        m.grid().logic_to_ambient_resistance()
    );
    let idle = m.steady_state(&TrafficSample::idle(1e-3));
    println!(
        "idle: peak_dram={:.1} surface={:.1}",
        idle.peak_dram_c, idle.surface_c
    );
    for bw in [80.0e9, 160.0e9, 240.0e9, 320.0e9] {
        let r = m.steady_state(&TrafficSample::external_stream(bw, 1e-3));
        println!(
            "bw={:.0}GB/s: peak_dram={:.1} logic={:.1} surface={:.1} P={:.1}W",
            bw / 1e9,
            r.peak_dram_c,
            r.peak_logic_c,
            r.surface_c,
            m.total_power_w(&TrafficSample::external_stream(bw, 1e-3))
        );
    }
    for rate in [0.0, 1.3, 3.0, 6.5] {
        let s = TrafficSample::with_pim(320.0e9, rate, 1e-3);
        let r = m.steady_state(&s);
        println!(
            "pim={:.1}op/ns: peak_dram={:.1} P={:.1}W",
            rate,
            r.peak_dram_c,
            m.total_power_w(&s)
        );
    }
    println!("--- fig1 ---");
    for p in run_fig1() {
        println!(
            "{}: idle surf={:.1} dram={:.1} | busy surf={:.1} dram={:.1} shutdown={}",
            p.sink.name(),
            p.idle.surface_c,
            p.idle.peak_dram_c,
            p.busy.surface_c,
            p.busy.peak_dram_c,
            p.shutdown
        );
    }
    println!("--- fig2 ---");
    for v in run_fig2() {
        println!(
            "{}: measured={:.1} est={:.1} model={:.1}",
            v.sink.name(),
            v.surface_measured_c,
            v.die_estimated_c,
            v.die_modeled_c
        );
    }
}
