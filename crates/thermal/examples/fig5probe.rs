use coolpim_thermal::{cooling::Cooling, model::HmcThermalModel, power::TrafficSample};
fn main() {
    let mut m = HmcThermalModel::hmc20(Cooling::CommodityServer);
    for r in [0.0, 0.5, 1.0, 1.1, 1.3, 2.0, 3.0, 4.0, 5.0, 5.5, 6.5] {
        let t = m
            .steady_state(&TrafficSample::with_pim(320.0e9, r, 1e-3))
            .peak_dram_c;
        println!("r={r:4}: {t:.1} C");
    }
}
