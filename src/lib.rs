//! # coolpim
//!
//! Façade crate for the CoolPIM reproduction (Nai et al., *CoolPIM:
//! Thermal-Aware Source Throttling for Efficient PIM Instruction
//! Offloading*, IPDPS 2018): re-exports the full system so downstream
//! users depend on one crate.
//!
//! * [`hmc`] — HMC 1.1/2.0 memory-system timing model with PIM support,
//! * [`thermal`] — power model + 3D-stacked RC thermal solver,
//! * [`gpu`] — discrete-event GPU timing model,
//! * [`graph`] — graph substrate and the GraphBIG-style workload suite,
//! * [`core`] — CoolPIM source throttling (SW-DynT / HW-DynT),
//!   co-simulation, and the experiment harness,
//! * [`telemetry`] — typed event tracing, metrics, wall-clock profiling
//!   of the co-simulation loop, and the spatial flight recorder behind
//!   postmortem dump bundles,
//! * [`validate`] — the lockstep oracle: reference and optimized
//!   implementations of the swappable component seams run side by side
//!   on property-generated inputs, with first-divergence reporting.
//!
//! ## Quick start
//!
//! ```no_run
//! use coolpim::prelude::*;
//!
//! // Build the evaluation graph, pick a workload, and co-simulate it
//! // under CoolPIM's software throttling.
//! let graph = GraphSpec::ldbc_like().build();
//! let mut kernel = make_kernel(Workload::Dc, &graph);
//! let result = CoSim::paper(Policy::CoolPimSw).run(kernel.as_mut());
//! println!(
//!     "dc under CoolPIM(SW): {:.2} ms, peak DRAM {:.1} °C, {:.2} op/ns",
//!     result.exec_s * 1e3,
//!     result.max_peak_dram_c,
//!     result.avg_pim_rate_op_ns,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use coolpim_core as core;
pub use coolpim_gpu as gpu;
pub use coolpim_graph as graph;
pub use coolpim_hmc as hmc;
pub use coolpim_telemetry as telemetry;
pub use coolpim_thermal as thermal;
pub use coolpim_validate as validate;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use coolpim_core::cosim::{CoSim, CoSimConfig, CoSimResult, FlightConfig};
    pub use coolpim_core::experiment::{mean_speedup, run_matrix, WorkloadResults};
    pub use coolpim_core::policy::Policy;
    pub use coolpim_gpu::{GpuConfig, GpuSystem};
    pub use coolpim_graph::generate::{GraphKind, GraphSpec};
    pub use coolpim_graph::workloads::{make_kernel, Workload};
    pub use coolpim_graph::Csr;
    pub use coolpim_hmc::{Hmc, HmcConfig, PimOp, Request, TempPhase};
    pub use coolpim_telemetry::{
        FlightRecorder, PostmortemBundle, RecordingSink, Telemetry, TelemetryEvent,
    };
    pub use coolpim_thermal::{Cooling, HmcThermalModel, TrafficSample};
}
