/root/repo/target/release/deps/hmc_throughput-eb4bec5f4830d981.d: crates/bench/benches/hmc_throughput.rs

/root/repo/target/release/deps/hmc_throughput-eb4bec5f4830d981: crates/bench/benches/hmc_throughput.rs

crates/bench/benches/hmc_throughput.rs:
