/root/repo/target/release/deps/ablation_cf-fe846ad1f66b230b.d: crates/bench/src/bin/ablation_cf.rs

/root/repo/target/release/deps/ablation_cf-fe846ad1f66b230b: crates/bench/src/bin/ablation_cf.rs

crates/bench/src/bin/ablation_cf.rs:
