/root/repo/target/release/deps/table3_mapping-3a33ba05f9e100b4.d: crates/bench/src/bin/table3_mapping.rs

/root/repo/target/release/deps/table3_mapping-3a33ba05f9e100b4: crates/bench/src/bin/table3_mapping.rs

crates/bench/src/bin/table3_mapping.rs:
