/root/repo/target/release/deps/bench_compare-7e68c35049659c19.d: crates/bench/src/bin/bench_compare.rs

/root/repo/target/release/deps/bench_compare-7e68c35049659c19: crates/bench/src/bin/bench_compare.rs

crates/bench/src/bin/bench_compare.rs:
