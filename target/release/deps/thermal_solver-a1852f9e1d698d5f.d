/root/repo/target/release/deps/thermal_solver-a1852f9e1d698d5f.d: crates/bench/benches/thermal_solver.rs

/root/repo/target/release/deps/thermal_solver-a1852f9e1d698d5f: crates/bench/benches/thermal_solver.rs

crates/bench/benches/thermal_solver.rs:
