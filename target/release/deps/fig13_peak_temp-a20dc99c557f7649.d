/root/repo/target/release/deps/fig13_peak_temp-a20dc99c557f7649.d: crates/bench/src/bin/fig13_peak_temp.rs

/root/repo/target/release/deps/fig13_peak_temp-a20dc99c557f7649: crates/bench/src/bin/fig13_peak_temp.rs

crates/bench/src/bin/fig13_peak_temp.rs:
