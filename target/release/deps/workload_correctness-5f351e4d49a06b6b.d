/root/repo/target/release/deps/workload_correctness-5f351e4d49a06b6b.d: crates/graph/tests/workload_correctness.rs

/root/repo/target/release/deps/workload_correctness-5f351e4d49a06b6b: crates/graph/tests/workload_correctness.rs

crates/graph/tests/workload_correctness.rs:
