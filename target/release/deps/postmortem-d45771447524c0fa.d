/root/repo/target/release/deps/postmortem-d45771447524c0fa.d: crates/bench/src/bin/postmortem.rs

/root/repo/target/release/deps/postmortem-d45771447524c0fa: crates/bench/src/bin/postmortem.rs

crates/bench/src/bin/postmortem.rs:
