/root/repo/target/release/deps/analyze-267da75c721e4937.d: crates/bench/src/bin/analyze.rs

/root/repo/target/release/deps/analyze-267da75c721e4937: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
