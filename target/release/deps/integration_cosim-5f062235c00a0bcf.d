/root/repo/target/release/deps/integration_cosim-5f062235c00a0bcf.d: tests/integration_cosim.rs

/root/repo/target/release/deps/integration_cosim-5f062235c00a0bcf: tests/integration_cosim.rs

tests/integration_cosim.rs:
