/root/repo/target/release/deps/fig13_peak_temp-4767ffff923d6dc7.d: crates/bench/src/bin/fig13_peak_temp.rs

/root/repo/target/release/deps/fig13_peak_temp-4767ffff923d6dc7: crates/bench/src/bin/fig13_peak_temp.rs

crates/bench/src/bin/fig13_peak_temp.rs:
