/root/repo/target/release/deps/bench_compare-dc974e14a7a4b6f0.d: crates/bench/src/bin/bench_compare.rs

/root/repo/target/release/deps/bench_compare-dc974e14a7a4b6f0: crates/bench/src/bin/bench_compare.rs

crates/bench/src/bin/bench_compare.rs:
