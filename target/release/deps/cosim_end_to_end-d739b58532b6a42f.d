/root/repo/target/release/deps/cosim_end_to_end-d739b58532b6a42f.d: crates/bench/benches/cosim_end_to_end.rs

/root/repo/target/release/deps/cosim_end_to_end-d739b58532b6a42f: crates/bench/benches/cosim_end_to_end.rs

crates/bench/benches/cosim_end_to_end.rs:
