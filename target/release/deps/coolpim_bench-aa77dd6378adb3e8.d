/root/repo/target/release/deps/coolpim_bench-aa77dd6378adb3e8.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

/root/repo/target/release/deps/libcoolpim_bench-aa77dd6378adb3e8.rlib: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

/root/repo/target/release/deps/libcoolpim_bench-aa77dd6378adb3e8.rmeta: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/harness.rs:
crates/bench/src/runrec.rs:
