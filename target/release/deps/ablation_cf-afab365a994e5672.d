/root/repo/target/release/deps/ablation_cf-afab365a994e5672.d: crates/bench/src/bin/ablation_cf.rs

/root/repo/target/release/deps/ablation_cf-afab365a994e5672: crates/bench/src/bin/ablation_cf.rs

crates/bench/src/bin/ablation_cf.rs:
