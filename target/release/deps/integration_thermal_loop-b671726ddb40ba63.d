/root/repo/target/release/deps/integration_thermal_loop-b671726ddb40ba63.d: tests/integration_thermal_loop.rs

/root/repo/target/release/deps/integration_thermal_loop-b671726ddb40ba63: tests/integration_thermal_loop.rs

tests/integration_thermal_loop.rs:
