/root/repo/target/release/deps/fig11_bandwidth-bd6503007cd22fba.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/release/deps/fig11_bandwidth-bd6503007cd22fba: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
