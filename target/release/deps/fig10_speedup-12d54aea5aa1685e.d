/root/repo/target/release/deps/fig10_speedup-12d54aea5aa1685e.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/release/deps/fig10_speedup-12d54aea5aa1685e: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
