/root/repo/target/release/deps/coolpim_graph-814d05375bb21bd1.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/layout.rs crates/graph/src/reference.rs crates/graph/src/rng.rs crates/graph/src/trace.rs crates/graph/src/workloads/mod.rs crates/graph/src/workloads/bfs.rs crates/graph/src/workloads/cc.rs crates/graph/src/workloads/common.rs crates/graph/src/workloads/dc.rs crates/graph/src/workloads/kcore.rs crates/graph/src/workloads/pagerank.rs crates/graph/src/workloads/sssp.rs

/root/repo/target/release/deps/coolpim_graph-814d05375bb21bd1: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/layout.rs crates/graph/src/reference.rs crates/graph/src/rng.rs crates/graph/src/trace.rs crates/graph/src/workloads/mod.rs crates/graph/src/workloads/bfs.rs crates/graph/src/workloads/cc.rs crates/graph/src/workloads/common.rs crates/graph/src/workloads/dc.rs crates/graph/src/workloads/kcore.rs crates/graph/src/workloads/pagerank.rs crates/graph/src/workloads/sssp.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/generate.rs:
crates/graph/src/io.rs:
crates/graph/src/layout.rs:
crates/graph/src/reference.rs:
crates/graph/src/rng.rs:
crates/graph/src/trace.rs:
crates/graph/src/workloads/mod.rs:
crates/graph/src/workloads/bfs.rs:
crates/graph/src/workloads/cc.rs:
crates/graph/src/workloads/common.rs:
crates/graph/src/workloads/dc.rs:
crates/graph/src/workloads/kcore.rs:
crates/graph/src/workloads/pagerank.rs:
crates/graph/src/workloads/sssp.rs:
