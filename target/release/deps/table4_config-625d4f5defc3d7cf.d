/root/repo/target/release/deps/table4_config-625d4f5defc3d7cf.d: crates/bench/src/bin/table4_config.rs

/root/repo/target/release/deps/table4_config-625d4f5defc3d7cf: crates/bench/src/bin/table4_config.rs

crates/bench/src/bin/table4_config.rs:
