/root/repo/target/release/deps/flight_recorder-6fc6dccad2eade10.d: tests/flight_recorder.rs

/root/repo/target/release/deps/flight_recorder-6fc6dccad2eade10: tests/flight_recorder.rs

tests/flight_recorder.rs:
