/root/repo/target/release/deps/fig4_bw_sweep-a756129d3cc03941.d: crates/bench/src/bin/fig4_bw_sweep.rs

/root/repo/target/release/deps/fig4_bw_sweep-a756129d3cc03941: crates/bench/src/bin/fig4_bw_sweep.rs

crates/bench/src/bin/fig4_bw_sweep.rs:
