/root/repo/target/release/deps/eval_all-3b97e931627ef235.d: crates/bench/src/bin/eval_all.rs

/root/repo/target/release/deps/eval_all-3b97e931627ef235: crates/bench/src/bin/eval_all.rs

crates/bench/src/bin/eval_all.rs:
