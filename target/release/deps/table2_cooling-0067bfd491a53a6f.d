/root/repo/target/release/deps/table2_cooling-0067bfd491a53a6f.d: crates/bench/src/bin/table2_cooling.rs

/root/repo/target/release/deps/table2_cooling-0067bfd491a53a6f: crates/bench/src/bin/table2_cooling.rs

crates/bench/src/bin/table2_cooling.rs:
