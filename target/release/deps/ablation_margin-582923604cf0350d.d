/root/repo/target/release/deps/ablation_margin-582923604cf0350d.d: crates/bench/src/bin/ablation_margin.rs

/root/repo/target/release/deps/ablation_margin-582923604cf0350d: crates/bench/src/bin/ablation_margin.rs

crates/bench/src/bin/ablation_margin.rs:
