/root/repo/target/release/deps/coolpim-f826a7abc56dcca0.d: src/lib.rs

/root/repo/target/release/deps/coolpim-f826a7abc56dcca0: src/lib.rs

src/lib.rs:
