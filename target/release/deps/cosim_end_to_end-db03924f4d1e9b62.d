/root/repo/target/release/deps/cosim_end_to_end-db03924f4d1e9b62.d: crates/bench/benches/cosim_end_to_end.rs

/root/repo/target/release/deps/cosim_end_to_end-db03924f4d1e9b62: crates/bench/benches/cosim_end_to_end.rs

crates/bench/benches/cosim_end_to_end.rs:
