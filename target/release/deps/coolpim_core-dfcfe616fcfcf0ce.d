/root/repo/target/release/deps/coolpim_core-dfcfe616fcfcf0ce.d: crates/core/src/lib.rs crates/core/src/cosim.rs crates/core/src/estimate.rs crates/core/src/experiment.rs crates/core/src/hw_dynt.rs crates/core/src/multi_level.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/sw_dynt.rs crates/core/src/token_pool.rs

/root/repo/target/release/deps/coolpim_core-dfcfe616fcfcf0ce: crates/core/src/lib.rs crates/core/src/cosim.rs crates/core/src/estimate.rs crates/core/src/experiment.rs crates/core/src/hw_dynt.rs crates/core/src/multi_level.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/sw_dynt.rs crates/core/src/token_pool.rs

crates/core/src/lib.rs:
crates/core/src/cosim.rs:
crates/core/src/estimate.rs:
crates/core/src/experiment.rs:
crates/core/src/hw_dynt.rs:
crates/core/src/multi_level.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/sw_dynt.rs:
crates/core/src/token_pool.rs:
