/root/repo/target/release/deps/fig3_heatmap-326502d01fd785af.d: crates/bench/src/bin/fig3_heatmap.rs

/root/repo/target/release/deps/fig3_heatmap-326502d01fd785af: crates/bench/src/bin/fig3_heatmap.rs

crates/bench/src/bin/fig3_heatmap.rs:
