/root/repo/target/release/deps/fig2_validation-fbce617e324c1d22.d: crates/bench/src/bin/fig2_validation.rs

/root/repo/target/release/deps/fig2_validation-fbce617e324c1d22: crates/bench/src/bin/fig2_validation.rs

crates/bench/src/bin/fig2_validation.rs:
