/root/repo/target/release/deps/table4_config-f6dc201a3dd15486.d: crates/bench/src/bin/table4_config.rs

/root/repo/target/release/deps/table4_config-f6dc201a3dd15486: crates/bench/src/bin/table4_config.rs

crates/bench/src/bin/table4_config.rs:
