/root/repo/target/release/deps/ablation_cooling-8c2cbc1748fe1aac.d: crates/bench/src/bin/ablation_cooling.rs

/root/repo/target/release/deps/ablation_cooling-8c2cbc1748fe1aac: crates/bench/src/bin/ablation_cooling.rs

crates/bench/src/bin/ablation_cooling.rs:
