/root/repo/target/release/deps/ablation_warning_levels-9c0979efd7accce1.d: crates/bench/src/bin/ablation_warning_levels.rs

/root/repo/target/release/deps/ablation_warning_levels-9c0979efd7accce1: crates/bench/src/bin/ablation_warning_levels.rs

crates/bench/src/bin/ablation_warning_levels.rs:
