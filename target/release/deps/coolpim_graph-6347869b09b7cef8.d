/root/repo/target/release/deps/coolpim_graph-6347869b09b7cef8.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/layout.rs crates/graph/src/reference.rs crates/graph/src/rng.rs crates/graph/src/trace.rs crates/graph/src/workloads/mod.rs crates/graph/src/workloads/bfs.rs crates/graph/src/workloads/cc.rs crates/graph/src/workloads/common.rs crates/graph/src/workloads/dc.rs crates/graph/src/workloads/kcore.rs crates/graph/src/workloads/pagerank.rs crates/graph/src/workloads/sssp.rs

/root/repo/target/release/deps/libcoolpim_graph-6347869b09b7cef8.rlib: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/layout.rs crates/graph/src/reference.rs crates/graph/src/rng.rs crates/graph/src/trace.rs crates/graph/src/workloads/mod.rs crates/graph/src/workloads/bfs.rs crates/graph/src/workloads/cc.rs crates/graph/src/workloads/common.rs crates/graph/src/workloads/dc.rs crates/graph/src/workloads/kcore.rs crates/graph/src/workloads/pagerank.rs crates/graph/src/workloads/sssp.rs

/root/repo/target/release/deps/libcoolpim_graph-6347869b09b7cef8.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/layout.rs crates/graph/src/reference.rs crates/graph/src/rng.rs crates/graph/src/trace.rs crates/graph/src/workloads/mod.rs crates/graph/src/workloads/bfs.rs crates/graph/src/workloads/cc.rs crates/graph/src/workloads/common.rs crates/graph/src/workloads/dc.rs crates/graph/src/workloads/kcore.rs crates/graph/src/workloads/pagerank.rs crates/graph/src/workloads/sssp.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/generate.rs:
crates/graph/src/io.rs:
crates/graph/src/layout.rs:
crates/graph/src/reference.rs:
crates/graph/src/rng.rs:
crates/graph/src/trace.rs:
crates/graph/src/workloads/mod.rs:
crates/graph/src/workloads/bfs.rs:
crates/graph/src/workloads/cc.rs:
crates/graph/src/workloads/common.rs:
crates/graph/src/workloads/dc.rs:
crates/graph/src/workloads/kcore.rs:
crates/graph/src/workloads/pagerank.rs:
crates/graph/src/workloads/sssp.rs:
