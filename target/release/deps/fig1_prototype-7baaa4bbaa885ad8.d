/root/repo/target/release/deps/fig1_prototype-7baaa4bbaa885ad8.d: crates/bench/src/bin/fig1_prototype.rs

/root/repo/target/release/deps/fig1_prototype-7baaa4bbaa885ad8: crates/bench/src/bin/fig1_prototype.rs

crates/bench/src/bin/fig1_prototype.rs:
