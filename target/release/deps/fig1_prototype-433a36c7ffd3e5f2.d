/root/repo/target/release/deps/fig1_prototype-433a36c7ffd3e5f2.d: crates/bench/src/bin/fig1_prototype.rs

/root/repo/target/release/deps/fig1_prototype-433a36c7ffd3e5f2: crates/bench/src/bin/fig1_prototype.rs

crates/bench/src/bin/fig1_prototype.rs:
