/root/repo/target/release/deps/ablation_margin-ed1645738ac26c6b.d: crates/bench/src/bin/ablation_margin.rs

/root/repo/target/release/deps/ablation_margin-ed1645738ac26c6b: crates/bench/src/bin/ablation_margin.rs

crates/bench/src/bin/ablation_margin.rs:
