/root/repo/target/release/deps/thermal_solver-a2d0cfabd60e68da.d: crates/bench/benches/thermal_solver.rs

/root/repo/target/release/deps/thermal_solver-a2d0cfabd60e68da: crates/bench/benches/thermal_solver.rs

crates/bench/benches/thermal_solver.rs:
