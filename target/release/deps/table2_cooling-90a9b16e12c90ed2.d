/root/repo/target/release/deps/table2_cooling-90a9b16e12c90ed2.d: crates/bench/src/bin/table2_cooling.rs

/root/repo/target/release/deps/table2_cooling-90a9b16e12c90ed2: crates/bench/src/bin/table2_cooling.rs

crates/bench/src/bin/table2_cooling.rs:
