/root/repo/target/release/deps/analyze-a294965065559fa6.d: crates/bench/src/bin/analyze.rs

/root/repo/target/release/deps/analyze-a294965065559fa6: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
