/root/repo/target/release/deps/cosim_end_to_end-2f67fcd6e7f4e7c2.d: crates/bench/benches/cosim_end_to_end.rs

/root/repo/target/release/deps/cosim_end_to_end-2f67fcd6e7f4e7c2: crates/bench/benches/cosim_end_to_end.rs

crates/bench/benches/cosim_end_to_end.rs:
