/root/repo/target/release/deps/coolpim-0c924ef9fd30a38c.d: src/lib.rs

/root/repo/target/release/deps/libcoolpim-0c924ef9fd30a38c.rlib: src/lib.rs

/root/repo/target/release/deps/libcoolpim-0c924ef9fd30a38c.rmeta: src/lib.rs

src/lib.rs:
