/root/repo/target/release/deps/fig12_pim_rate-46c085b7d0a42b55.d: crates/bench/src/bin/fig12_pim_rate.rs

/root/repo/target/release/deps/fig12_pim_rate-46c085b7d0a42b55: crates/bench/src/bin/fig12_pim_rate.rs

crates/bench/src/bin/fig12_pim_rate.rs:
