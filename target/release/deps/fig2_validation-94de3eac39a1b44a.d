/root/repo/target/release/deps/fig2_validation-94de3eac39a1b44a.d: crates/bench/src/bin/fig2_validation.rs

/root/repo/target/release/deps/fig2_validation-94de3eac39a1b44a: crates/bench/src/bin/fig2_validation.rs

crates/bench/src/bin/fig2_validation.rs:
