/root/repo/target/release/deps/table1_flits-46f7f1e4751b97b4.d: crates/bench/src/bin/table1_flits.rs

/root/repo/target/release/deps/table1_flits-46f7f1e4751b97b4: crates/bench/src/bin/table1_flits.rs

crates/bench/src/bin/table1_flits.rs:
