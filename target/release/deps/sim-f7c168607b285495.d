/root/repo/target/release/deps/sim-f7c168607b285495.d: crates/bench/src/bin/sim.rs

/root/repo/target/release/deps/sim-f7c168607b285495: crates/bench/src/bin/sim.rs

crates/bench/src/bin/sim.rs:
