/root/repo/target/release/deps/fig4_bw_sweep-5ebdf7b5e7182ecf.d: crates/bench/src/bin/fig4_bw_sweep.rs

/root/repo/target/release/deps/fig4_bw_sweep-5ebdf7b5e7182ecf: crates/bench/src/bin/fig4_bw_sweep.rs

crates/bench/src/bin/fig4_bw_sweep.rs:
