/root/repo/target/release/deps/coolpim_bench-3f4336e7cf3e253d.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

/root/repo/target/release/deps/coolpim_bench-3f4336e7cf3e253d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/harness.rs:
crates/bench/src/runrec.rs:
