/root/repo/target/release/deps/graph_kernels-1eba01762e30198b.d: crates/bench/benches/graph_kernels.rs

/root/repo/target/release/deps/graph_kernels-1eba01762e30198b: crates/bench/benches/graph_kernels.rs

crates/bench/benches/graph_kernels.rs:
