/root/repo/target/release/deps/coolpim_telemetry-e1e10c7f72f9952f.d: crates/telemetry/src/lib.rs crates/telemetry/src/analysis.rs crates/telemetry/src/event.rs crates/telemetry/src/flight.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libcoolpim_telemetry-e1e10c7f72f9952f.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/analysis.rs crates/telemetry/src/event.rs crates/telemetry/src/flight.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libcoolpim_telemetry-e1e10c7f72f9952f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/analysis.rs crates/telemetry/src/event.rs crates/telemetry/src/flight.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/analysis.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/flight.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
