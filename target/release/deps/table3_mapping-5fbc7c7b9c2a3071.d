/root/repo/target/release/deps/table3_mapping-5fbc7c7b9c2a3071.d: crates/bench/src/bin/table3_mapping.rs

/root/repo/target/release/deps/table3_mapping-5fbc7c7b9c2a3071: crates/bench/src/bin/table3_mapping.rs

crates/bench/src/bin/table3_mapping.rs:
