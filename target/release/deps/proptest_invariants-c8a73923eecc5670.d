/root/repo/target/release/deps/proptest_invariants-c8a73923eecc5670.d: tests/proptest_invariants.rs

/root/repo/target/release/deps/proptest_invariants-c8a73923eecc5670: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
