/root/repo/target/release/deps/fig3_heatmap-cfd8ef5f2771aff7.d: crates/bench/src/bin/fig3_heatmap.rs

/root/repo/target/release/deps/fig3_heatmap-cfd8ef5f2771aff7: crates/bench/src/bin/fig3_heatmap.rs

crates/bench/src/bin/fig3_heatmap.rs:
