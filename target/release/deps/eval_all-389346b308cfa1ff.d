/root/repo/target/release/deps/eval_all-389346b308cfa1ff.d: crates/bench/src/bin/eval_all.rs

/root/repo/target/release/deps/eval_all-389346b308cfa1ff: crates/bench/src/bin/eval_all.rs

crates/bench/src/bin/eval_all.rs:
