/root/repo/target/release/deps/fig5_pim_sweep-52dff1582f36dc1a.d: crates/bench/src/bin/fig5_pim_sweep.rs

/root/repo/target/release/deps/fig5_pim_sweep-52dff1582f36dc1a: crates/bench/src/bin/fig5_pim_sweep.rs

crates/bench/src/bin/fig5_pim_sweep.rs:
