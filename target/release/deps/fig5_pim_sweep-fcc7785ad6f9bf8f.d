/root/repo/target/release/deps/fig5_pim_sweep-fcc7785ad6f9bf8f.d: crates/bench/src/bin/fig5_pim_sweep.rs

/root/repo/target/release/deps/fig5_pim_sweep-fcc7785ad6f9bf8f: crates/bench/src/bin/fig5_pim_sweep.rs

crates/bench/src/bin/fig5_pim_sweep.rs:
