/root/repo/target/release/deps/graph_kernels-b0148fc50cbed93c.d: crates/bench/benches/graph_kernels.rs

/root/repo/target/release/deps/graph_kernels-b0148fc50cbed93c: crates/bench/benches/graph_kernels.rs

crates/bench/benches/graph_kernels.rs:
