/root/repo/target/release/deps/table1_flits-689e45f4f135cbbf.d: crates/bench/src/bin/table1_flits.rs

/root/repo/target/release/deps/table1_flits-689e45f4f135cbbf: crates/bench/src/bin/table1_flits.rs

crates/bench/src/bin/table1_flits.rs:
