/root/repo/target/release/deps/fig14_timeline-96baaf85079daef9.d: crates/bench/src/bin/fig14_timeline.rs

/root/repo/target/release/deps/fig14_timeline-96baaf85079daef9: crates/bench/src/bin/fig14_timeline.rs

crates/bench/src/bin/fig14_timeline.rs:
