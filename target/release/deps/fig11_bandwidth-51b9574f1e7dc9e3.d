/root/repo/target/release/deps/fig11_bandwidth-51b9574f1e7dc9e3.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/release/deps/fig11_bandwidth-51b9574f1e7dc9e3: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
