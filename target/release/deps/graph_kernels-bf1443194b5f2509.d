/root/repo/target/release/deps/graph_kernels-bf1443194b5f2509.d: crates/bench/benches/graph_kernels.rs

/root/repo/target/release/deps/graph_kernels-bf1443194b5f2509: crates/bench/benches/graph_kernels.rs

crates/bench/benches/graph_kernels.rs:
