/root/repo/target/release/deps/telemetry_tracing-36866d1dfa4304b2.d: tests/telemetry_tracing.rs

/root/repo/target/release/deps/telemetry_tracing-36866d1dfa4304b2: tests/telemetry_tracing.rs

tests/telemetry_tracing.rs:
