/root/repo/target/release/deps/hmc_throughput-f24a2f29a187eb4b.d: crates/bench/benches/hmc_throughput.rs

/root/repo/target/release/deps/hmc_throughput-f24a2f29a187eb4b: crates/bench/benches/hmc_throughput.rs

crates/bench/benches/hmc_throughput.rs:
