/root/repo/target/release/deps/coolpim_telemetry-cc3bdbbab75f341b.d: crates/telemetry/src/lib.rs crates/telemetry/src/analysis.rs crates/telemetry/src/event.rs crates/telemetry/src/flight.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/coolpim_telemetry-cc3bdbbab75f341b: crates/telemetry/src/lib.rs crates/telemetry/src/analysis.rs crates/telemetry/src/event.rs crates/telemetry/src/flight.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/analysis.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/flight.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
