/root/repo/target/release/deps/hmc_throughput-b81cad195f4e5e61.d: crates/bench/benches/hmc_throughput.rs

/root/repo/target/release/deps/hmc_throughput-b81cad195f4e5e61: crates/bench/benches/hmc_throughput.rs

crates/bench/benches/hmc_throughput.rs:
