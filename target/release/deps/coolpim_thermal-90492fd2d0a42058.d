/root/repo/target/release/deps/coolpim_thermal-90492fd2d0a42058.d: crates/thermal/src/lib.rs crates/thermal/src/cooling.rs crates/thermal/src/floorplan.rs crates/thermal/src/grid.rs crates/thermal/src/hmc11.rs crates/thermal/src/layers.rs crates/thermal/src/materials.rs crates/thermal/src/model.rs crates/thermal/src/power.rs crates/thermal/src/solver.rs

/root/repo/target/release/deps/libcoolpim_thermal-90492fd2d0a42058.rlib: crates/thermal/src/lib.rs crates/thermal/src/cooling.rs crates/thermal/src/floorplan.rs crates/thermal/src/grid.rs crates/thermal/src/hmc11.rs crates/thermal/src/layers.rs crates/thermal/src/materials.rs crates/thermal/src/model.rs crates/thermal/src/power.rs crates/thermal/src/solver.rs

/root/repo/target/release/deps/libcoolpim_thermal-90492fd2d0a42058.rmeta: crates/thermal/src/lib.rs crates/thermal/src/cooling.rs crates/thermal/src/floorplan.rs crates/thermal/src/grid.rs crates/thermal/src/hmc11.rs crates/thermal/src/layers.rs crates/thermal/src/materials.rs crates/thermal/src/model.rs crates/thermal/src/power.rs crates/thermal/src/solver.rs

crates/thermal/src/lib.rs:
crates/thermal/src/cooling.rs:
crates/thermal/src/floorplan.rs:
crates/thermal/src/grid.rs:
crates/thermal/src/hmc11.rs:
crates/thermal/src/layers.rs:
crates/thermal/src/materials.rs:
crates/thermal/src/model.rs:
crates/thermal/src/power.rs:
crates/thermal/src/solver.rs:
