/root/repo/target/release/deps/ablation_epoch-13139aad9b955956.d: crates/bench/src/bin/ablation_epoch.rs

/root/repo/target/release/deps/ablation_epoch-13139aad9b955956: crates/bench/src/bin/ablation_epoch.rs

crates/bench/src/bin/ablation_epoch.rs:
