/root/repo/target/release/deps/sim-0c0fa851e63377a5.d: crates/bench/src/bin/sim.rs

/root/repo/target/release/deps/sim-0c0fa851e63377a5: crates/bench/src/bin/sim.rs

crates/bench/src/bin/sim.rs:
