/root/repo/target/release/deps/fig10_speedup-094f61f1c597f889.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/release/deps/fig10_speedup-094f61f1c597f889: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
