/root/repo/target/release/deps/postmortem-9aad23c227068ca2.d: crates/bench/src/bin/postmortem.rs

/root/repo/target/release/deps/postmortem-9aad23c227068ca2: crates/bench/src/bin/postmortem.rs

crates/bench/src/bin/postmortem.rs:
