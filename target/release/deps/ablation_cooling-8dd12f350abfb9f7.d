/root/repo/target/release/deps/ablation_cooling-8dd12f350abfb9f7.d: crates/bench/src/bin/ablation_cooling.rs

/root/repo/target/release/deps/ablation_cooling-8dd12f350abfb9f7: crates/bench/src/bin/ablation_cooling.rs

crates/bench/src/bin/ablation_cooling.rs:
