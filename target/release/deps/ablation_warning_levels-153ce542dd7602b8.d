/root/repo/target/release/deps/ablation_warning_levels-153ce542dd7602b8.d: crates/bench/src/bin/ablation_warning_levels.rs

/root/repo/target/release/deps/ablation_warning_levels-153ce542dd7602b8: crates/bench/src/bin/ablation_warning_levels.rs

crates/bench/src/bin/ablation_warning_levels.rs:
