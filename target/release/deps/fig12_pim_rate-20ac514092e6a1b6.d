/root/repo/target/release/deps/fig12_pim_rate-20ac514092e6a1b6.d: crates/bench/src/bin/fig12_pim_rate.rs

/root/repo/target/release/deps/fig12_pim_rate-20ac514092e6a1b6: crates/bench/src/bin/fig12_pim_rate.rs

crates/bench/src/bin/fig12_pim_rate.rs:
