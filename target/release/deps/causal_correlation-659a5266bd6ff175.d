/root/repo/target/release/deps/causal_correlation-659a5266bd6ff175.d: tests/causal_correlation.rs

/root/repo/target/release/deps/causal_correlation-659a5266bd6ff175: tests/causal_correlation.rs

tests/causal_correlation.rs:
