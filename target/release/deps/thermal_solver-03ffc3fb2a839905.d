/root/repo/target/release/deps/thermal_solver-03ffc3fb2a839905.d: crates/bench/benches/thermal_solver.rs

/root/repo/target/release/deps/thermal_solver-03ffc3fb2a839905: crates/bench/benches/thermal_solver.rs

crates/bench/benches/thermal_solver.rs:
