/root/repo/target/release/deps/fig14_timeline-446ec8c0e67db81c.d: crates/bench/src/bin/fig14_timeline.rs

/root/repo/target/release/deps/fig14_timeline-446ec8c0e67db81c: crates/bench/src/bin/fig14_timeline.rs

crates/bench/src/bin/fig14_timeline.rs:
