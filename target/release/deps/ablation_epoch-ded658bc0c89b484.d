/root/repo/target/release/deps/ablation_epoch-ded658bc0c89b484.d: crates/bench/src/bin/ablation_epoch.rs

/root/repo/target/release/deps/ablation_epoch-ded658bc0c89b484: crates/bench/src/bin/ablation_epoch.rs

crates/bench/src/bin/ablation_epoch.rs:
