/root/repo/target/release/deps/coolpim_thermal-17ebce355fcc8fa7.d: crates/thermal/src/lib.rs crates/thermal/src/cooling.rs crates/thermal/src/floorplan.rs crates/thermal/src/grid.rs crates/thermal/src/hmc11.rs crates/thermal/src/layers.rs crates/thermal/src/materials.rs crates/thermal/src/model.rs crates/thermal/src/power.rs crates/thermal/src/solver.rs

/root/repo/target/release/deps/coolpim_thermal-17ebce355fcc8fa7: crates/thermal/src/lib.rs crates/thermal/src/cooling.rs crates/thermal/src/floorplan.rs crates/thermal/src/grid.rs crates/thermal/src/hmc11.rs crates/thermal/src/layers.rs crates/thermal/src/materials.rs crates/thermal/src/model.rs crates/thermal/src/power.rs crates/thermal/src/solver.rs

crates/thermal/src/lib.rs:
crates/thermal/src/cooling.rs:
crates/thermal/src/floorplan.rs:
crates/thermal/src/grid.rs:
crates/thermal/src/hmc11.rs:
crates/thermal/src/layers.rs:
crates/thermal/src/materials.rs:
crates/thermal/src/model.rs:
crates/thermal/src/power.rs:
crates/thermal/src/solver.rs:
