/root/repo/target/release/examples/quickstart-b27e91e1081b70c9.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b27e91e1081b70c9: examples/quickstart.rs

examples/quickstart.rs:
