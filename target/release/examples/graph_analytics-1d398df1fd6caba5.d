/root/repo/target/release/examples/graph_analytics-1d398df1fd6caba5.d: examples/graph_analytics.rs

/root/repo/target/release/examples/graph_analytics-1d398df1fd6caba5: examples/graph_analytics.rs

examples/graph_analytics.rs:
