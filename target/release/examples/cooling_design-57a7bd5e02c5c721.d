/root/repo/target/release/examples/cooling_design-57a7bd5e02c5c721.d: examples/cooling_design.rs

/root/repo/target/release/examples/cooling_design-57a7bd5e02c5c721: examples/cooling_design.rs

examples/cooling_design.rs:
