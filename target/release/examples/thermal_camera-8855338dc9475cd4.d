/root/repo/target/release/examples/thermal_camera-8855338dc9475cd4.d: examples/thermal_camera.rs

/root/repo/target/release/examples/thermal_camera-8855338dc9475cd4: examples/thermal_camera.rs

examples/thermal_camera.rs:
