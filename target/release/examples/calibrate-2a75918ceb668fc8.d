/root/repo/target/release/examples/calibrate-2a75918ceb668fc8.d: crates/thermal/examples/calibrate.rs

/root/repo/target/release/examples/calibrate-2a75918ceb668fc8: crates/thermal/examples/calibrate.rs

crates/thermal/examples/calibrate.rs:
