/root/repo/target/release/examples/probe-c5e230d5aa60db97.d: crates/core/examples/probe.rs

/root/repo/target/release/examples/probe-c5e230d5aa60db97: crates/core/examples/probe.rs

crates/core/examples/probe.rs:
