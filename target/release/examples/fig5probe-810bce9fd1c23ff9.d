/root/repo/target/release/examples/fig5probe-810bce9fd1c23ff9.d: crates/thermal/examples/fig5probe.rs

/root/repo/target/release/examples/fig5probe-810bce9fd1c23ff9: crates/thermal/examples/fig5probe.rs

crates/thermal/examples/fig5probe.rs:
