/root/repo/target/debug/examples/calibrate-d66b533ccd939112.d: crates/thermal/examples/calibrate.rs

/root/repo/target/debug/examples/libcalibrate-d66b533ccd939112.rmeta: crates/thermal/examples/calibrate.rs

crates/thermal/examples/calibrate.rs:
