/root/repo/target/debug/examples/graph_analytics-187bc141490b54b1.d: examples/graph_analytics.rs

/root/repo/target/debug/examples/libgraph_analytics-187bc141490b54b1.rmeta: examples/graph_analytics.rs

examples/graph_analytics.rs:
