/root/repo/target/debug/examples/probe-e638d77da19f61e7.d: crates/core/examples/probe.rs

/root/repo/target/debug/examples/libprobe-e638d77da19f61e7.rmeta: crates/core/examples/probe.rs

crates/core/examples/probe.rs:
