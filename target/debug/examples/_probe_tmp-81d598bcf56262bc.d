/root/repo/target/debug/examples/_probe_tmp-81d598bcf56262bc.d: examples/_probe_tmp.rs

/root/repo/target/debug/examples/_probe_tmp-81d598bcf56262bc: examples/_probe_tmp.rs

examples/_probe_tmp.rs:
