/root/repo/target/debug/examples/fig5probe-42981ab74cb89b9d.d: crates/thermal/examples/fig5probe.rs Cargo.toml

/root/repo/target/debug/examples/libfig5probe-42981ab74cb89b9d.rmeta: crates/thermal/examples/fig5probe.rs Cargo.toml

crates/thermal/examples/fig5probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
