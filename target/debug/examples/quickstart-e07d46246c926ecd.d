/root/repo/target/debug/examples/quickstart-e07d46246c926ecd.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-e07d46246c926ecd.rmeta: examples/quickstart.rs

examples/quickstart.rs:
