/root/repo/target/debug/examples/calibrate-d509d15ec8243b89.d: crates/thermal/examples/calibrate.rs

/root/repo/target/debug/examples/calibrate-d509d15ec8243b89: crates/thermal/examples/calibrate.rs

crates/thermal/examples/calibrate.rs:
