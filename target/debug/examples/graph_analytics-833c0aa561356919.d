/root/repo/target/debug/examples/graph_analytics-833c0aa561356919.d: examples/graph_analytics.rs

/root/repo/target/debug/examples/graph_analytics-833c0aa561356919: examples/graph_analytics.rs

examples/graph_analytics.rs:
