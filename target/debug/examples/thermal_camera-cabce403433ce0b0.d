/root/repo/target/debug/examples/thermal_camera-cabce403433ce0b0.d: examples/thermal_camera.rs

/root/repo/target/debug/examples/libthermal_camera-cabce403433ce0b0.rmeta: examples/thermal_camera.rs

examples/thermal_camera.rs:
