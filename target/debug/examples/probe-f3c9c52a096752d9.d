/root/repo/target/debug/examples/probe-f3c9c52a096752d9.d: crates/core/examples/probe.rs

/root/repo/target/debug/examples/probe-f3c9c52a096752d9: crates/core/examples/probe.rs

crates/core/examples/probe.rs:
