/root/repo/target/debug/examples/calibrate-643f9ce963b6195d.d: crates/thermal/examples/calibrate.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate-643f9ce963b6195d.rmeta: crates/thermal/examples/calibrate.rs Cargo.toml

crates/thermal/examples/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
