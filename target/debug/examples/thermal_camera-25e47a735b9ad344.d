/root/repo/target/debug/examples/thermal_camera-25e47a735b9ad344.d: examples/thermal_camera.rs Cargo.toml

/root/repo/target/debug/examples/libthermal_camera-25e47a735b9ad344.rmeta: examples/thermal_camera.rs Cargo.toml

examples/thermal_camera.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
