/root/repo/target/debug/examples/cooling_design-5f5c04f0fa5e9549.d: examples/cooling_design.rs

/root/repo/target/debug/examples/cooling_design-5f5c04f0fa5e9549: examples/cooling_design.rs

examples/cooling_design.rs:
