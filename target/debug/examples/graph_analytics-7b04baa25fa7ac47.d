/root/repo/target/debug/examples/graph_analytics-7b04baa25fa7ac47.d: examples/graph_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libgraph_analytics-7b04baa25fa7ac47.rmeta: examples/graph_analytics.rs Cargo.toml

examples/graph_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
