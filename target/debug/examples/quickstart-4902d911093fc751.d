/root/repo/target/debug/examples/quickstart-4902d911093fc751.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4902d911093fc751: examples/quickstart.rs

examples/quickstart.rs:
