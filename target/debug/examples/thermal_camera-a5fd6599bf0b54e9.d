/root/repo/target/debug/examples/thermal_camera-a5fd6599bf0b54e9.d: examples/thermal_camera.rs

/root/repo/target/debug/examples/thermal_camera-a5fd6599bf0b54e9: examples/thermal_camera.rs

examples/thermal_camera.rs:
