/root/repo/target/debug/examples/cooling_design-0566702e05349862.d: examples/cooling_design.rs

/root/repo/target/debug/examples/libcooling_design-0566702e05349862.rmeta: examples/cooling_design.rs

examples/cooling_design.rs:
