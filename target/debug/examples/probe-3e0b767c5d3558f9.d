/root/repo/target/debug/examples/probe-3e0b767c5d3558f9.d: crates/core/examples/probe.rs Cargo.toml

/root/repo/target/debug/examples/libprobe-3e0b767c5d3558f9.rmeta: crates/core/examples/probe.rs Cargo.toml

crates/core/examples/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
