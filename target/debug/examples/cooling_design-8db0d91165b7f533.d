/root/repo/target/debug/examples/cooling_design-8db0d91165b7f533.d: examples/cooling_design.rs Cargo.toml

/root/repo/target/debug/examples/libcooling_design-8db0d91165b7f533.rmeta: examples/cooling_design.rs Cargo.toml

examples/cooling_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
