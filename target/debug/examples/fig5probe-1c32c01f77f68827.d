/root/repo/target/debug/examples/fig5probe-1c32c01f77f68827.d: crates/thermal/examples/fig5probe.rs

/root/repo/target/debug/examples/libfig5probe-1c32c01f77f68827.rmeta: crates/thermal/examples/fig5probe.rs

crates/thermal/examples/fig5probe.rs:
