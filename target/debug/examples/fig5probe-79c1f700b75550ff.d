/root/repo/target/debug/examples/fig5probe-79c1f700b75550ff.d: crates/thermal/examples/fig5probe.rs

/root/repo/target/debug/examples/fig5probe-79c1f700b75550ff: crates/thermal/examples/fig5probe.rs

crates/thermal/examples/fig5probe.rs:
