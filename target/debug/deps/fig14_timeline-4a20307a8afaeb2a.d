/root/repo/target/debug/deps/fig14_timeline-4a20307a8afaeb2a.d: crates/bench/src/bin/fig14_timeline.rs

/root/repo/target/debug/deps/fig14_timeline-4a20307a8afaeb2a: crates/bench/src/bin/fig14_timeline.rs

crates/bench/src/bin/fig14_timeline.rs:
