/root/repo/target/debug/deps/ablation_margin-da5d39a5b657e42d.d: crates/bench/src/bin/ablation_margin.rs

/root/repo/target/debug/deps/libablation_margin-da5d39a5b657e42d.rmeta: crates/bench/src/bin/ablation_margin.rs

crates/bench/src/bin/ablation_margin.rs:
