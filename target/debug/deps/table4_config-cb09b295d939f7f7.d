/root/repo/target/debug/deps/table4_config-cb09b295d939f7f7.d: crates/bench/src/bin/table4_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_config-cb09b295d939f7f7.rmeta: crates/bench/src/bin/table4_config.rs Cargo.toml

crates/bench/src/bin/table4_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
