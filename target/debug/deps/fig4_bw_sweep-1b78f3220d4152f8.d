/root/repo/target/debug/deps/fig4_bw_sweep-1b78f3220d4152f8.d: crates/bench/src/bin/fig4_bw_sweep.rs

/root/repo/target/debug/deps/fig4_bw_sweep-1b78f3220d4152f8: crates/bench/src/bin/fig4_bw_sweep.rs

crates/bench/src/bin/fig4_bw_sweep.rs:
