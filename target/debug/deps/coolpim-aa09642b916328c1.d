/root/repo/target/debug/deps/coolpim-aa09642b916328c1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcoolpim-aa09642b916328c1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
