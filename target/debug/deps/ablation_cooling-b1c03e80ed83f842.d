/root/repo/target/debug/deps/ablation_cooling-b1c03e80ed83f842.d: crates/bench/src/bin/ablation_cooling.rs

/root/repo/target/debug/deps/ablation_cooling-b1c03e80ed83f842: crates/bench/src/bin/ablation_cooling.rs

crates/bench/src/bin/ablation_cooling.rs:
