/root/repo/target/debug/deps/table3_mapping-66c5d8c83c58ea88.d: crates/bench/src/bin/table3_mapping.rs

/root/repo/target/debug/deps/table3_mapping-66c5d8c83c58ea88: crates/bench/src/bin/table3_mapping.rs

crates/bench/src/bin/table3_mapping.rs:
