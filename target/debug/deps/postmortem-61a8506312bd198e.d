/root/repo/target/debug/deps/postmortem-61a8506312bd198e.d: crates/bench/src/bin/postmortem.rs

/root/repo/target/debug/deps/libpostmortem-61a8506312bd198e.rmeta: crates/bench/src/bin/postmortem.rs

crates/bench/src/bin/postmortem.rs:
