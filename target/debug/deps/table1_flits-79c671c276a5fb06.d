/root/repo/target/debug/deps/table1_flits-79c671c276a5fb06.d: crates/bench/src/bin/table1_flits.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_flits-79c671c276a5fb06.rmeta: crates/bench/src/bin/table1_flits.rs Cargo.toml

crates/bench/src/bin/table1_flits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
