/root/repo/target/debug/deps/sim-42793ba277bbad2d.d: crates/bench/src/bin/sim.rs

/root/repo/target/debug/deps/libsim-42793ba277bbad2d.rmeta: crates/bench/src/bin/sim.rs

crates/bench/src/bin/sim.rs:
