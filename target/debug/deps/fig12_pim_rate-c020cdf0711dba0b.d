/root/repo/target/debug/deps/fig12_pim_rate-c020cdf0711dba0b.d: crates/bench/src/bin/fig12_pim_rate.rs

/root/repo/target/debug/deps/libfig12_pim_rate-c020cdf0711dba0b.rmeta: crates/bench/src/bin/fig12_pim_rate.rs

crates/bench/src/bin/fig12_pim_rate.rs:
