/root/repo/target/debug/deps/ablation_epoch-df4ed444c1834375.d: crates/bench/src/bin/ablation_epoch.rs

/root/repo/target/debug/deps/libablation_epoch-df4ed444c1834375.rmeta: crates/bench/src/bin/ablation_epoch.rs

crates/bench/src/bin/ablation_epoch.rs:
