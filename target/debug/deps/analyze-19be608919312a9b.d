/root/repo/target/debug/deps/analyze-19be608919312a9b.d: crates/bench/src/bin/analyze.rs

/root/repo/target/debug/deps/analyze-19be608919312a9b: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
