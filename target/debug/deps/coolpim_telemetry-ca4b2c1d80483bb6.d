/root/repo/target/debug/deps/coolpim_telemetry-ca4b2c1d80483bb6.d: crates/telemetry/src/lib.rs crates/telemetry/src/analysis.rs crates/telemetry/src/event.rs crates/telemetry/src/flight.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libcoolpim_telemetry-ca4b2c1d80483bb6.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/analysis.rs crates/telemetry/src/event.rs crates/telemetry/src/flight.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/analysis.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/flight.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
