/root/repo/target/debug/deps/fig3_heatmap-71220aa0eb66b5a8.d: crates/bench/src/bin/fig3_heatmap.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_heatmap-71220aa0eb66b5a8.rmeta: crates/bench/src/bin/fig3_heatmap.rs Cargo.toml

crates/bench/src/bin/fig3_heatmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
