/root/repo/target/debug/deps/table4_config-ab63aab7aea7acf5.d: crates/bench/src/bin/table4_config.rs

/root/repo/target/debug/deps/libtable4_config-ab63aab7aea7acf5.rmeta: crates/bench/src/bin/table4_config.rs

crates/bench/src/bin/table4_config.rs:
