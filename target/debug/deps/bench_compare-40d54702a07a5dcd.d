/root/repo/target/debug/deps/bench_compare-40d54702a07a5dcd.d: crates/bench/src/bin/bench_compare.rs

/root/repo/target/debug/deps/bench_compare-40d54702a07a5dcd: crates/bench/src/bin/bench_compare.rs

crates/bench/src/bin/bench_compare.rs:
