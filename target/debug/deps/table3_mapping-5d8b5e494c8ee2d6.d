/root/repo/target/debug/deps/table3_mapping-5d8b5e494c8ee2d6.d: crates/bench/src/bin/table3_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_mapping-5d8b5e494c8ee2d6.rmeta: crates/bench/src/bin/table3_mapping.rs Cargo.toml

crates/bench/src/bin/table3_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
