/root/repo/target/debug/deps/fig13_peak_temp-d7cb19d5deaed3c0.d: crates/bench/src/bin/fig13_peak_temp.rs

/root/repo/target/debug/deps/libfig13_peak_temp-d7cb19d5deaed3c0.rmeta: crates/bench/src/bin/fig13_peak_temp.rs

crates/bench/src/bin/fig13_peak_temp.rs:
