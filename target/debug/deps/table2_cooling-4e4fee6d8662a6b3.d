/root/repo/target/debug/deps/table2_cooling-4e4fee6d8662a6b3.d: crates/bench/src/bin/table2_cooling.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_cooling-4e4fee6d8662a6b3.rmeta: crates/bench/src/bin/table2_cooling.rs Cargo.toml

crates/bench/src/bin/table2_cooling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
