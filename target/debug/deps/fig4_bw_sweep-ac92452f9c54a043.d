/root/repo/target/debug/deps/fig4_bw_sweep-ac92452f9c54a043.d: crates/bench/src/bin/fig4_bw_sweep.rs

/root/repo/target/debug/deps/libfig4_bw_sweep-ac92452f9c54a043.rmeta: crates/bench/src/bin/fig4_bw_sweep.rs

crates/bench/src/bin/fig4_bw_sweep.rs:
