/root/repo/target/debug/deps/bench_compare-a4bc532f819b5b1b.d: crates/bench/src/bin/bench_compare.rs

/root/repo/target/debug/deps/bench_compare-a4bc532f819b5b1b: crates/bench/src/bin/bench_compare.rs

crates/bench/src/bin/bench_compare.rs:
