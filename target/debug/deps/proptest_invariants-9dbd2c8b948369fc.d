/root/repo/target/debug/deps/proptest_invariants-9dbd2c8b948369fc.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-9dbd2c8b948369fc: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
