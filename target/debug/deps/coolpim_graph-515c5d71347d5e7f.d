/root/repo/target/debug/deps/coolpim_graph-515c5d71347d5e7f.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/layout.rs crates/graph/src/reference.rs crates/graph/src/rng.rs crates/graph/src/trace.rs crates/graph/src/workloads/mod.rs crates/graph/src/workloads/bfs.rs crates/graph/src/workloads/cc.rs crates/graph/src/workloads/common.rs crates/graph/src/workloads/dc.rs crates/graph/src/workloads/kcore.rs crates/graph/src/workloads/pagerank.rs crates/graph/src/workloads/sssp.rs Cargo.toml

/root/repo/target/debug/deps/libcoolpim_graph-515c5d71347d5e7f.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/layout.rs crates/graph/src/reference.rs crates/graph/src/rng.rs crates/graph/src/trace.rs crates/graph/src/workloads/mod.rs crates/graph/src/workloads/bfs.rs crates/graph/src/workloads/cc.rs crates/graph/src/workloads/common.rs crates/graph/src/workloads/dc.rs crates/graph/src/workloads/kcore.rs crates/graph/src/workloads/pagerank.rs crates/graph/src/workloads/sssp.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/generate.rs:
crates/graph/src/io.rs:
crates/graph/src/layout.rs:
crates/graph/src/reference.rs:
crates/graph/src/rng.rs:
crates/graph/src/trace.rs:
crates/graph/src/workloads/mod.rs:
crates/graph/src/workloads/bfs.rs:
crates/graph/src/workloads/cc.rs:
crates/graph/src/workloads/common.rs:
crates/graph/src/workloads/dc.rs:
crates/graph/src/workloads/kcore.rs:
crates/graph/src/workloads/pagerank.rs:
crates/graph/src/workloads/sssp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
