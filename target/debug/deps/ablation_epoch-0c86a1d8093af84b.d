/root/repo/target/debug/deps/ablation_epoch-0c86a1d8093af84b.d: crates/bench/src/bin/ablation_epoch.rs

/root/repo/target/debug/deps/libablation_epoch-0c86a1d8093af84b.rmeta: crates/bench/src/bin/ablation_epoch.rs

crates/bench/src/bin/ablation_epoch.rs:
