/root/repo/target/debug/deps/fig10_speedup-e9e2c6f4a565ac63.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/debug/deps/fig10_speedup-e9e2c6f4a565ac63: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
