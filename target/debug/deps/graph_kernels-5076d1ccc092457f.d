/root/repo/target/debug/deps/graph_kernels-5076d1ccc092457f.d: crates/bench/benches/graph_kernels.rs

/root/repo/target/debug/deps/graph_kernels-5076d1ccc092457f: crates/bench/benches/graph_kernels.rs

crates/bench/benches/graph_kernels.rs:
