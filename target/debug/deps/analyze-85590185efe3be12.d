/root/repo/target/debug/deps/analyze-85590185efe3be12.d: crates/bench/src/bin/analyze.rs Cargo.toml

/root/repo/target/debug/deps/libanalyze-85590185efe3be12.rmeta: crates/bench/src/bin/analyze.rs Cargo.toml

crates/bench/src/bin/analyze.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
