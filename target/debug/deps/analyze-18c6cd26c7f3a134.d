/root/repo/target/debug/deps/analyze-18c6cd26c7f3a134.d: crates/bench/src/bin/analyze.rs

/root/repo/target/debug/deps/analyze-18c6cd26c7f3a134: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
