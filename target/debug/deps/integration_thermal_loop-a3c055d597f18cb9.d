/root/repo/target/debug/deps/integration_thermal_loop-a3c055d597f18cb9.d: tests/integration_thermal_loop.rs

/root/repo/target/debug/deps/integration_thermal_loop-a3c055d597f18cb9: tests/integration_thermal_loop.rs

tests/integration_thermal_loop.rs:
