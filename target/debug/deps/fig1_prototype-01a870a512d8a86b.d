/root/repo/target/debug/deps/fig1_prototype-01a870a512d8a86b.d: crates/bench/src/bin/fig1_prototype.rs

/root/repo/target/debug/deps/fig1_prototype-01a870a512d8a86b: crates/bench/src/bin/fig1_prototype.rs

crates/bench/src/bin/fig1_prototype.rs:
