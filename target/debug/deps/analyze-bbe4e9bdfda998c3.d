/root/repo/target/debug/deps/analyze-bbe4e9bdfda998c3.d: crates/bench/src/bin/analyze.rs

/root/repo/target/debug/deps/libanalyze-bbe4e9bdfda998c3.rmeta: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
