/root/repo/target/debug/deps/workload_correctness-6f8075bd35bd5728.d: crates/graph/tests/workload_correctness.rs

/root/repo/target/debug/deps/workload_correctness-6f8075bd35bd5728: crates/graph/tests/workload_correctness.rs

crates/graph/tests/workload_correctness.rs:
