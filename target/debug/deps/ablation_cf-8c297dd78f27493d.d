/root/repo/target/debug/deps/ablation_cf-8c297dd78f27493d.d: crates/bench/src/bin/ablation_cf.rs

/root/repo/target/debug/deps/ablation_cf-8c297dd78f27493d: crates/bench/src/bin/ablation_cf.rs

crates/bench/src/bin/ablation_cf.rs:
