/root/repo/target/debug/deps/cosim_end_to_end-d542459d19836f9e.d: crates/bench/benches/cosim_end_to_end.rs

/root/repo/target/debug/deps/cosim_end_to_end-d542459d19836f9e: crates/bench/benches/cosim_end_to_end.rs

crates/bench/benches/cosim_end_to_end.rs:
