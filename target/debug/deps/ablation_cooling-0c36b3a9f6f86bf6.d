/root/repo/target/debug/deps/ablation_cooling-0c36b3a9f6f86bf6.d: crates/bench/src/bin/ablation_cooling.rs

/root/repo/target/debug/deps/libablation_cooling-0c36b3a9f6f86bf6.rmeta: crates/bench/src/bin/ablation_cooling.rs

crates/bench/src/bin/ablation_cooling.rs:
