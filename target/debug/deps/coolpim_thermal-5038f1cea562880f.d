/root/repo/target/debug/deps/coolpim_thermal-5038f1cea562880f.d: crates/thermal/src/lib.rs crates/thermal/src/cooling.rs crates/thermal/src/floorplan.rs crates/thermal/src/grid.rs crates/thermal/src/hmc11.rs crates/thermal/src/layers.rs crates/thermal/src/materials.rs crates/thermal/src/model.rs crates/thermal/src/power.rs crates/thermal/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libcoolpim_thermal-5038f1cea562880f.rmeta: crates/thermal/src/lib.rs crates/thermal/src/cooling.rs crates/thermal/src/floorplan.rs crates/thermal/src/grid.rs crates/thermal/src/hmc11.rs crates/thermal/src/layers.rs crates/thermal/src/materials.rs crates/thermal/src/model.rs crates/thermal/src/power.rs crates/thermal/src/solver.rs Cargo.toml

crates/thermal/src/lib.rs:
crates/thermal/src/cooling.rs:
crates/thermal/src/floorplan.rs:
crates/thermal/src/grid.rs:
crates/thermal/src/hmc11.rs:
crates/thermal/src/layers.rs:
crates/thermal/src/materials.rs:
crates/thermal/src/model.rs:
crates/thermal/src/power.rs:
crates/thermal/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
