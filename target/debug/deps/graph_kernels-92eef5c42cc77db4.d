/root/repo/target/debug/deps/graph_kernels-92eef5c42cc77db4.d: crates/bench/benches/graph_kernels.rs

/root/repo/target/debug/deps/graph_kernels-92eef5c42cc77db4: crates/bench/benches/graph_kernels.rs

crates/bench/benches/graph_kernels.rs:
