/root/repo/target/debug/deps/integration_cosim-6c51dba390e88233.d: tests/integration_cosim.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_cosim-6c51dba390e88233.rmeta: tests/integration_cosim.rs Cargo.toml

tests/integration_cosim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
