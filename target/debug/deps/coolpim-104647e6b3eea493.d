/root/repo/target/debug/deps/coolpim-104647e6b3eea493.d: src/lib.rs

/root/repo/target/debug/deps/libcoolpim-104647e6b3eea493.rmeta: src/lib.rs

src/lib.rs:
