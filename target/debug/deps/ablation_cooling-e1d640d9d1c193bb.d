/root/repo/target/debug/deps/ablation_cooling-e1d640d9d1c193bb.d: crates/bench/src/bin/ablation_cooling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cooling-e1d640d9d1c193bb.rmeta: crates/bench/src/bin/ablation_cooling.rs Cargo.toml

crates/bench/src/bin/ablation_cooling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
