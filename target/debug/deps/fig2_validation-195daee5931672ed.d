/root/repo/target/debug/deps/fig2_validation-195daee5931672ed.d: crates/bench/src/bin/fig2_validation.rs

/root/repo/target/debug/deps/libfig2_validation-195daee5931672ed.rmeta: crates/bench/src/bin/fig2_validation.rs

crates/bench/src/bin/fig2_validation.rs:
