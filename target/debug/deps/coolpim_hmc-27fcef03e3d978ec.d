/root/repo/target/debug/deps/coolpim_hmc-27fcef03e3d978ec.d: crates/hmc/src/lib.rs crates/hmc/src/bank.rs crates/hmc/src/command.rs crates/hmc/src/cube.rs crates/hmc/src/flit.rs crates/hmc/src/link.rs crates/hmc/src/packet.rs crates/hmc/src/stats.rs crates/hmc/src/thermal_state.rs crates/hmc/src/timing.rs crates/hmc/src/vault.rs Cargo.toml

/root/repo/target/debug/deps/libcoolpim_hmc-27fcef03e3d978ec.rmeta: crates/hmc/src/lib.rs crates/hmc/src/bank.rs crates/hmc/src/command.rs crates/hmc/src/cube.rs crates/hmc/src/flit.rs crates/hmc/src/link.rs crates/hmc/src/packet.rs crates/hmc/src/stats.rs crates/hmc/src/thermal_state.rs crates/hmc/src/timing.rs crates/hmc/src/vault.rs Cargo.toml

crates/hmc/src/lib.rs:
crates/hmc/src/bank.rs:
crates/hmc/src/command.rs:
crates/hmc/src/cube.rs:
crates/hmc/src/flit.rs:
crates/hmc/src/link.rs:
crates/hmc/src/packet.rs:
crates/hmc/src/stats.rs:
crates/hmc/src/thermal_state.rs:
crates/hmc/src/timing.rs:
crates/hmc/src/vault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
