/root/repo/target/debug/deps/table2_cooling-8e446bd3e772f54f.d: crates/bench/src/bin/table2_cooling.rs

/root/repo/target/debug/deps/table2_cooling-8e446bd3e772f54f: crates/bench/src/bin/table2_cooling.rs

crates/bench/src/bin/table2_cooling.rs:
