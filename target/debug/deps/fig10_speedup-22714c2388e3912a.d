/root/repo/target/debug/deps/fig10_speedup-22714c2388e3912a.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/debug/deps/libfig10_speedup-22714c2388e3912a.rmeta: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
