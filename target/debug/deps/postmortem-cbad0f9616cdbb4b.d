/root/repo/target/debug/deps/postmortem-cbad0f9616cdbb4b.d: crates/bench/src/bin/postmortem.rs Cargo.toml

/root/repo/target/debug/deps/libpostmortem-cbad0f9616cdbb4b.rmeta: crates/bench/src/bin/postmortem.rs Cargo.toml

crates/bench/src/bin/postmortem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
