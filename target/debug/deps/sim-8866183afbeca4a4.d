/root/repo/target/debug/deps/sim-8866183afbeca4a4.d: crates/bench/src/bin/sim.rs

/root/repo/target/debug/deps/sim-8866183afbeca4a4: crates/bench/src/bin/sim.rs

crates/bench/src/bin/sim.rs:
