/root/repo/target/debug/deps/fig10_speedup-81e8d57dff1c7aa5.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/debug/deps/libfig10_speedup-81e8d57dff1c7aa5.rmeta: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
