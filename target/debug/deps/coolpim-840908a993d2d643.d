/root/repo/target/debug/deps/coolpim-840908a993d2d643.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcoolpim-840908a993d2d643.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
