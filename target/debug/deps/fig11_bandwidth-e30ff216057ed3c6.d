/root/repo/target/debug/deps/fig11_bandwidth-e30ff216057ed3c6.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/debug/deps/libfig11_bandwidth-e30ff216057ed3c6.rmeta: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
