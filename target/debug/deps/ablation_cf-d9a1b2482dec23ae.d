/root/repo/target/debug/deps/ablation_cf-d9a1b2482dec23ae.d: crates/bench/src/bin/ablation_cf.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cf-d9a1b2482dec23ae.rmeta: crates/bench/src/bin/ablation_cf.rs Cargo.toml

crates/bench/src/bin/ablation_cf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
