/root/repo/target/debug/deps/fig5_pim_sweep-f64470ba04286fdd.d: crates/bench/src/bin/fig5_pim_sweep.rs

/root/repo/target/debug/deps/libfig5_pim_sweep-f64470ba04286fdd.rmeta: crates/bench/src/bin/fig5_pim_sweep.rs

crates/bench/src/bin/fig5_pim_sweep.rs:
