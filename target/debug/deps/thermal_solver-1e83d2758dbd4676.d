/root/repo/target/debug/deps/thermal_solver-1e83d2758dbd4676.d: crates/bench/benches/thermal_solver.rs

/root/repo/target/debug/deps/thermal_solver-1e83d2758dbd4676: crates/bench/benches/thermal_solver.rs

crates/bench/benches/thermal_solver.rs:
