/root/repo/target/debug/deps/cosim_end_to_end-dfa905e2f71d547f.d: crates/bench/benches/cosim_end_to_end.rs

/root/repo/target/debug/deps/cosim_end_to_end-dfa905e2f71d547f: crates/bench/benches/cosim_end_to_end.rs

crates/bench/benches/cosim_end_to_end.rs:
