/root/repo/target/debug/deps/fig1_prototype-735f4bb658ac0b72.d: crates/bench/src/bin/fig1_prototype.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_prototype-735f4bb658ac0b72.rmeta: crates/bench/src/bin/fig1_prototype.rs Cargo.toml

crates/bench/src/bin/fig1_prototype.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
