/root/repo/target/debug/deps/hmc_throughput-4ba59b4ad3d71cf1.d: crates/bench/benches/hmc_throughput.rs

/root/repo/target/debug/deps/libhmc_throughput-4ba59b4ad3d71cf1.rmeta: crates/bench/benches/hmc_throughput.rs

crates/bench/benches/hmc_throughput.rs:
