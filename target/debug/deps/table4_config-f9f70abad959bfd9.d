/root/repo/target/debug/deps/table4_config-f9f70abad959bfd9.d: crates/bench/src/bin/table4_config.rs

/root/repo/target/debug/deps/table4_config-f9f70abad959bfd9: crates/bench/src/bin/table4_config.rs

crates/bench/src/bin/table4_config.rs:
