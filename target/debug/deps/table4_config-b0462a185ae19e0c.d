/root/repo/target/debug/deps/table4_config-b0462a185ae19e0c.d: crates/bench/src/bin/table4_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_config-b0462a185ae19e0c.rmeta: crates/bench/src/bin/table4_config.rs Cargo.toml

crates/bench/src/bin/table4_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
