/root/repo/target/debug/deps/bench_compare-8e869777b1564841.d: crates/bench/src/bin/bench_compare.rs

/root/repo/target/debug/deps/libbench_compare-8e869777b1564841.rmeta: crates/bench/src/bin/bench_compare.rs

crates/bench/src/bin/bench_compare.rs:
