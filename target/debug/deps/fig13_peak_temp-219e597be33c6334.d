/root/repo/target/debug/deps/fig13_peak_temp-219e597be33c6334.d: crates/bench/src/bin/fig13_peak_temp.rs

/root/repo/target/debug/deps/fig13_peak_temp-219e597be33c6334: crates/bench/src/bin/fig13_peak_temp.rs

crates/bench/src/bin/fig13_peak_temp.rs:
