/root/repo/target/debug/deps/fig14_timeline-9b2d76738a53636d.d: crates/bench/src/bin/fig14_timeline.rs

/root/repo/target/debug/deps/libfig14_timeline-9b2d76738a53636d.rmeta: crates/bench/src/bin/fig14_timeline.rs

crates/bench/src/bin/fig14_timeline.rs:
