/root/repo/target/debug/deps/table3_mapping-b55180e2a5a6867f.d: crates/bench/src/bin/table3_mapping.rs

/root/repo/target/debug/deps/libtable3_mapping-b55180e2a5a6867f.rmeta: crates/bench/src/bin/table3_mapping.rs

crates/bench/src/bin/table3_mapping.rs:
