/root/repo/target/debug/deps/eval_all-53be88e6065a8243.d: crates/bench/src/bin/eval_all.rs

/root/repo/target/debug/deps/libeval_all-53be88e6065a8243.rmeta: crates/bench/src/bin/eval_all.rs

crates/bench/src/bin/eval_all.rs:
