/root/repo/target/debug/deps/bench_compare-dc88cac3dd263ce5.d: crates/bench/src/bin/bench_compare.rs Cargo.toml

/root/repo/target/debug/deps/libbench_compare-dc88cac3dd263ce5.rmeta: crates/bench/src/bin/bench_compare.rs Cargo.toml

crates/bench/src/bin/bench_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
