/root/repo/target/debug/deps/workload_correctness-933fe1d53b7972c0.d: crates/graph/tests/workload_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_correctness-933fe1d53b7972c0.rmeta: crates/graph/tests/workload_correctness.rs Cargo.toml

crates/graph/tests/workload_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
