/root/repo/target/debug/deps/fig14_timeline-de73098a69991d3f.d: crates/bench/src/bin/fig14_timeline.rs

/root/repo/target/debug/deps/fig14_timeline-de73098a69991d3f: crates/bench/src/bin/fig14_timeline.rs

crates/bench/src/bin/fig14_timeline.rs:
