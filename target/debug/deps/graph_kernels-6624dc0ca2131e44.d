/root/repo/target/debug/deps/graph_kernels-6624dc0ca2131e44.d: crates/bench/benches/graph_kernels.rs

/root/repo/target/debug/deps/graph_kernels-6624dc0ca2131e44: crates/bench/benches/graph_kernels.rs

crates/bench/benches/graph_kernels.rs:
