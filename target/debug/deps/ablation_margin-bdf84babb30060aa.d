/root/repo/target/debug/deps/ablation_margin-bdf84babb30060aa.d: crates/bench/src/bin/ablation_margin.rs Cargo.toml

/root/repo/target/debug/deps/libablation_margin-bdf84babb30060aa.rmeta: crates/bench/src/bin/ablation_margin.rs Cargo.toml

crates/bench/src/bin/ablation_margin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
