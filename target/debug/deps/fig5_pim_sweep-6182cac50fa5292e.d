/root/repo/target/debug/deps/fig5_pim_sweep-6182cac50fa5292e.d: crates/bench/src/bin/fig5_pim_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pim_sweep-6182cac50fa5292e.rmeta: crates/bench/src/bin/fig5_pim_sweep.rs Cargo.toml

crates/bench/src/bin/fig5_pim_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
