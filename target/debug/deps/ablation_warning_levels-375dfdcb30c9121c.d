/root/repo/target/debug/deps/ablation_warning_levels-375dfdcb30c9121c.d: crates/bench/src/bin/ablation_warning_levels.rs

/root/repo/target/debug/deps/libablation_warning_levels-375dfdcb30c9121c.rmeta: crates/bench/src/bin/ablation_warning_levels.rs

crates/bench/src/bin/ablation_warning_levels.rs:
