/root/repo/target/debug/deps/fig5_pim_sweep-8233a77608d592a2.d: crates/bench/src/bin/fig5_pim_sweep.rs

/root/repo/target/debug/deps/libfig5_pim_sweep-8233a77608d592a2.rmeta: crates/bench/src/bin/fig5_pim_sweep.rs

crates/bench/src/bin/fig5_pim_sweep.rs:
