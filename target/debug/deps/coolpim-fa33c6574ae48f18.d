/root/repo/target/debug/deps/coolpim-fa33c6574ae48f18.d: src/lib.rs

/root/repo/target/debug/deps/coolpim-fa33c6574ae48f18: src/lib.rs

src/lib.rs:
