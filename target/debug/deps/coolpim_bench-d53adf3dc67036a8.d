/root/repo/target/debug/deps/coolpim_bench-d53adf3dc67036a8.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

/root/repo/target/debug/deps/coolpim_bench-d53adf3dc67036a8: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/harness.rs:
crates/bench/src/runrec.rs:
