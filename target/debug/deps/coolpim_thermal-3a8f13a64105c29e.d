/root/repo/target/debug/deps/coolpim_thermal-3a8f13a64105c29e.d: crates/thermal/src/lib.rs crates/thermal/src/cooling.rs crates/thermal/src/floorplan.rs crates/thermal/src/grid.rs crates/thermal/src/hmc11.rs crates/thermal/src/layers.rs crates/thermal/src/materials.rs crates/thermal/src/model.rs crates/thermal/src/power.rs crates/thermal/src/solver.rs

/root/repo/target/debug/deps/libcoolpim_thermal-3a8f13a64105c29e.rmeta: crates/thermal/src/lib.rs crates/thermal/src/cooling.rs crates/thermal/src/floorplan.rs crates/thermal/src/grid.rs crates/thermal/src/hmc11.rs crates/thermal/src/layers.rs crates/thermal/src/materials.rs crates/thermal/src/model.rs crates/thermal/src/power.rs crates/thermal/src/solver.rs

crates/thermal/src/lib.rs:
crates/thermal/src/cooling.rs:
crates/thermal/src/floorplan.rs:
crates/thermal/src/grid.rs:
crates/thermal/src/hmc11.rs:
crates/thermal/src/layers.rs:
crates/thermal/src/materials.rs:
crates/thermal/src/model.rs:
crates/thermal/src/power.rs:
crates/thermal/src/solver.rs:
