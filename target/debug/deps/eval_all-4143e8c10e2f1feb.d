/root/repo/target/debug/deps/eval_all-4143e8c10e2f1feb.d: crates/bench/src/bin/eval_all.rs Cargo.toml

/root/repo/target/debug/deps/libeval_all-4143e8c10e2f1feb.rmeta: crates/bench/src/bin/eval_all.rs Cargo.toml

crates/bench/src/bin/eval_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
