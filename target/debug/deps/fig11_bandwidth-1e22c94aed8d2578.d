/root/repo/target/debug/deps/fig11_bandwidth-1e22c94aed8d2578.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/debug/deps/libfig11_bandwidth-1e22c94aed8d2578.rmeta: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
