/root/repo/target/debug/deps/postmortem-3aa1c21cfc72e06a.d: crates/bench/src/bin/postmortem.rs

/root/repo/target/debug/deps/postmortem-3aa1c21cfc72e06a: crates/bench/src/bin/postmortem.rs

crates/bench/src/bin/postmortem.rs:
