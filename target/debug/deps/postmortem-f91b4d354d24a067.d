/root/repo/target/debug/deps/postmortem-f91b4d354d24a067.d: crates/bench/src/bin/postmortem.rs

/root/repo/target/debug/deps/postmortem-f91b4d354d24a067: crates/bench/src/bin/postmortem.rs

crates/bench/src/bin/postmortem.rs:
