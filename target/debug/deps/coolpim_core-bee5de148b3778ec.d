/root/repo/target/debug/deps/coolpim_core-bee5de148b3778ec.d: crates/core/src/lib.rs crates/core/src/cosim.rs crates/core/src/estimate.rs crates/core/src/experiment.rs crates/core/src/hw_dynt.rs crates/core/src/multi_level.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/sw_dynt.rs crates/core/src/token_pool.rs Cargo.toml

/root/repo/target/debug/deps/libcoolpim_core-bee5de148b3778ec.rmeta: crates/core/src/lib.rs crates/core/src/cosim.rs crates/core/src/estimate.rs crates/core/src/experiment.rs crates/core/src/hw_dynt.rs crates/core/src/multi_level.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/sw_dynt.rs crates/core/src/token_pool.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cosim.rs:
crates/core/src/estimate.rs:
crates/core/src/experiment.rs:
crates/core/src/hw_dynt.rs:
crates/core/src/multi_level.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/sw_dynt.rs:
crates/core/src/token_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
