/root/repo/target/debug/deps/table3_mapping-63b106f4a0453f6c.d: crates/bench/src/bin/table3_mapping.rs

/root/repo/target/debug/deps/libtable3_mapping-63b106f4a0453f6c.rmeta: crates/bench/src/bin/table3_mapping.rs

crates/bench/src/bin/table3_mapping.rs:
