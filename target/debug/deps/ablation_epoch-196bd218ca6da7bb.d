/root/repo/target/debug/deps/ablation_epoch-196bd218ca6da7bb.d: crates/bench/src/bin/ablation_epoch.rs

/root/repo/target/debug/deps/ablation_epoch-196bd218ca6da7bb: crates/bench/src/bin/ablation_epoch.rs

crates/bench/src/bin/ablation_epoch.rs:
