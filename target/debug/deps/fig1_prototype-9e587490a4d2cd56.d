/root/repo/target/debug/deps/fig1_prototype-9e587490a4d2cd56.d: crates/bench/src/bin/fig1_prototype.rs

/root/repo/target/debug/deps/libfig1_prototype-9e587490a4d2cd56.rmeta: crates/bench/src/bin/fig1_prototype.rs

crates/bench/src/bin/fig1_prototype.rs:
