/root/repo/target/debug/deps/coolpim_gpu-d3c90a0de7759348.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/controller.rs crates/gpu/src/isa.rs crates/gpu/src/kernel.rs crates/gpu/src/stats.rs crates/gpu/src/system.rs

/root/repo/target/debug/deps/libcoolpim_gpu-d3c90a0de7759348.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/controller.rs crates/gpu/src/isa.rs crates/gpu/src/kernel.rs crates/gpu/src/stats.rs crates/gpu/src/system.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/coalesce.rs:
crates/gpu/src/config.rs:
crates/gpu/src/controller.rs:
crates/gpu/src/isa.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/stats.rs:
crates/gpu/src/system.rs:
