/root/repo/target/debug/deps/fig11_bandwidth-dd2340df96d3213c.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/debug/deps/fig11_bandwidth-dd2340df96d3213c: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
