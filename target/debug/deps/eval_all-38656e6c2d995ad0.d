/root/repo/target/debug/deps/eval_all-38656e6c2d995ad0.d: crates/bench/src/bin/eval_all.rs

/root/repo/target/debug/deps/eval_all-38656e6c2d995ad0: crates/bench/src/bin/eval_all.rs

crates/bench/src/bin/eval_all.rs:
