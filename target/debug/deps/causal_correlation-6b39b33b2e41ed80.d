/root/repo/target/debug/deps/causal_correlation-6b39b33b2e41ed80.d: tests/causal_correlation.rs

/root/repo/target/debug/deps/causal_correlation-6b39b33b2e41ed80: tests/causal_correlation.rs

tests/causal_correlation.rs:
