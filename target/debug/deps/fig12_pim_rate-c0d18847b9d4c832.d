/root/repo/target/debug/deps/fig12_pim_rate-c0d18847b9d4c832.d: crates/bench/src/bin/fig12_pim_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_pim_rate-c0d18847b9d4c832.rmeta: crates/bench/src/bin/fig12_pim_rate.rs Cargo.toml

crates/bench/src/bin/fig12_pim_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
