/root/repo/target/debug/deps/ablation_warning_levels-4c5837a2df1442ad.d: crates/bench/src/bin/ablation_warning_levels.rs

/root/repo/target/debug/deps/ablation_warning_levels-4c5837a2df1442ad: crates/bench/src/bin/ablation_warning_levels.rs

crates/bench/src/bin/ablation_warning_levels.rs:
