/root/repo/target/debug/deps/fig13_peak_temp-b1cae91e4ee4a37f.d: crates/bench/src/bin/fig13_peak_temp.rs

/root/repo/target/debug/deps/libfig13_peak_temp-b1cae91e4ee4a37f.rmeta: crates/bench/src/bin/fig13_peak_temp.rs

crates/bench/src/bin/fig13_peak_temp.rs:
