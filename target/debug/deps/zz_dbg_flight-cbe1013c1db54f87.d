/root/repo/target/debug/deps/zz_dbg_flight-cbe1013c1db54f87.d: tests/zz_dbg_flight.rs

/root/repo/target/debug/deps/zz_dbg_flight-cbe1013c1db54f87: tests/zz_dbg_flight.rs

tests/zz_dbg_flight.rs:
