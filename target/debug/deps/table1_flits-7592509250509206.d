/root/repo/target/debug/deps/table1_flits-7592509250509206.d: crates/bench/src/bin/table1_flits.rs

/root/repo/target/debug/deps/libtable1_flits-7592509250509206.rmeta: crates/bench/src/bin/table1_flits.rs

crates/bench/src/bin/table1_flits.rs:
