/root/repo/target/debug/deps/ablation_epoch-3dd6bbf8641ff07d.d: crates/bench/src/bin/ablation_epoch.rs Cargo.toml

/root/repo/target/debug/deps/libablation_epoch-3dd6bbf8641ff07d.rmeta: crates/bench/src/bin/ablation_epoch.rs Cargo.toml

crates/bench/src/bin/ablation_epoch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
