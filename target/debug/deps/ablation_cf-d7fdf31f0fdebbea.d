/root/repo/target/debug/deps/ablation_cf-d7fdf31f0fdebbea.d: crates/bench/src/bin/ablation_cf.rs

/root/repo/target/debug/deps/libablation_cf-d7fdf31f0fdebbea.rmeta: crates/bench/src/bin/ablation_cf.rs

crates/bench/src/bin/ablation_cf.rs:
