/root/repo/target/debug/deps/coolpim_core-58da64dca9fbb270.d: crates/core/src/lib.rs crates/core/src/cosim.rs crates/core/src/estimate.rs crates/core/src/experiment.rs crates/core/src/hw_dynt.rs crates/core/src/multi_level.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/sw_dynt.rs crates/core/src/token_pool.rs

/root/repo/target/debug/deps/libcoolpim_core-58da64dca9fbb270.rmeta: crates/core/src/lib.rs crates/core/src/cosim.rs crates/core/src/estimate.rs crates/core/src/experiment.rs crates/core/src/hw_dynt.rs crates/core/src/multi_level.rs crates/core/src/policy.rs crates/core/src/report.rs crates/core/src/sw_dynt.rs crates/core/src/token_pool.rs

crates/core/src/lib.rs:
crates/core/src/cosim.rs:
crates/core/src/estimate.rs:
crates/core/src/experiment.rs:
crates/core/src/hw_dynt.rs:
crates/core/src/multi_level.rs:
crates/core/src/policy.rs:
crates/core/src/report.rs:
crates/core/src/sw_dynt.rs:
crates/core/src/token_pool.rs:
