/root/repo/target/debug/deps/flight_recorder-4cb65a3e529247e0.d: tests/flight_recorder.rs

/root/repo/target/debug/deps/libflight_recorder-4cb65a3e529247e0.rmeta: tests/flight_recorder.rs

tests/flight_recorder.rs:
