/root/repo/target/debug/deps/telemetry_tracing-9368d0cae55c75ad.d: tests/telemetry_tracing.rs

/root/repo/target/debug/deps/telemetry_tracing-9368d0cae55c75ad: tests/telemetry_tracing.rs

tests/telemetry_tracing.rs:
