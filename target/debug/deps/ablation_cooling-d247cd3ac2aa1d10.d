/root/repo/target/debug/deps/ablation_cooling-d247cd3ac2aa1d10.d: crates/bench/src/bin/ablation_cooling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cooling-d247cd3ac2aa1d10.rmeta: crates/bench/src/bin/ablation_cooling.rs Cargo.toml

crates/bench/src/bin/ablation_cooling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
