/root/repo/target/debug/deps/table1_flits-5ecad64bdb658055.d: crates/bench/src/bin/table1_flits.rs

/root/repo/target/debug/deps/table1_flits-5ecad64bdb658055: crates/bench/src/bin/table1_flits.rs

crates/bench/src/bin/table1_flits.rs:
