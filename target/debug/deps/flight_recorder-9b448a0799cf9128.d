/root/repo/target/debug/deps/flight_recorder-9b448a0799cf9128.d: tests/flight_recorder.rs Cargo.toml

/root/repo/target/debug/deps/libflight_recorder-9b448a0799cf9128.rmeta: tests/flight_recorder.rs Cargo.toml

tests/flight_recorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
