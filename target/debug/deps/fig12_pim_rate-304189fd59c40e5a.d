/root/repo/target/debug/deps/fig12_pim_rate-304189fd59c40e5a.d: crates/bench/src/bin/fig12_pim_rate.rs

/root/repo/target/debug/deps/fig12_pim_rate-304189fd59c40e5a: crates/bench/src/bin/fig12_pim_rate.rs

crates/bench/src/bin/fig12_pim_rate.rs:
