/root/repo/target/debug/deps/coolpim-087a4283cdfe0a5c.d: src/lib.rs

/root/repo/target/debug/deps/libcoolpim-087a4283cdfe0a5c.rlib: src/lib.rs

/root/repo/target/debug/deps/libcoolpim-087a4283cdfe0a5c.rmeta: src/lib.rs

src/lib.rs:
