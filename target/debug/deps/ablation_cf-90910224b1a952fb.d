/root/repo/target/debug/deps/ablation_cf-90910224b1a952fb.d: crates/bench/src/bin/ablation_cf.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cf-90910224b1a952fb.rmeta: crates/bench/src/bin/ablation_cf.rs Cargo.toml

crates/bench/src/bin/ablation_cf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
