/root/repo/target/debug/deps/fig12_pim_rate-7a1b71edbc6f2839.d: crates/bench/src/bin/fig12_pim_rate.rs

/root/repo/target/debug/deps/libfig12_pim_rate-7a1b71edbc6f2839.rmeta: crates/bench/src/bin/fig12_pim_rate.rs

crates/bench/src/bin/fig12_pim_rate.rs:
