/root/repo/target/debug/deps/eval_all-ab96c3da26ffb299.d: crates/bench/src/bin/eval_all.rs

/root/repo/target/debug/deps/eval_all-ab96c3da26ffb299: crates/bench/src/bin/eval_all.rs

crates/bench/src/bin/eval_all.rs:
