/root/repo/target/debug/deps/ablation_cooling-7163c3699d871aa0.d: crates/bench/src/bin/ablation_cooling.rs

/root/repo/target/debug/deps/libablation_cooling-7163c3699d871aa0.rmeta: crates/bench/src/bin/ablation_cooling.rs

crates/bench/src/bin/ablation_cooling.rs:
