/root/repo/target/debug/deps/fig2_validation-fda9c3a3b34759ed.d: crates/bench/src/bin/fig2_validation.rs

/root/repo/target/debug/deps/libfig2_validation-fda9c3a3b34759ed.rmeta: crates/bench/src/bin/fig2_validation.rs

crates/bench/src/bin/fig2_validation.rs:
