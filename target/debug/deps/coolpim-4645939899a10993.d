/root/repo/target/debug/deps/coolpim-4645939899a10993.d: src/lib.rs

/root/repo/target/debug/deps/libcoolpim-4645939899a10993.rmeta: src/lib.rs

src/lib.rs:
