/root/repo/target/debug/deps/ablation_warning_levels-ae3db103b7ff1fa7.d: crates/bench/src/bin/ablation_warning_levels.rs

/root/repo/target/debug/deps/libablation_warning_levels-ae3db103b7ff1fa7.rmeta: crates/bench/src/bin/ablation_warning_levels.rs

crates/bench/src/bin/ablation_warning_levels.rs:
