/root/repo/target/debug/deps/ablation_cooling-3abbfd40c01c29ef.d: crates/bench/src/bin/ablation_cooling.rs

/root/repo/target/debug/deps/ablation_cooling-3abbfd40c01c29ef: crates/bench/src/bin/ablation_cooling.rs

crates/bench/src/bin/ablation_cooling.rs:
