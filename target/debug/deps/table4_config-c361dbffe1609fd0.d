/root/repo/target/debug/deps/table4_config-c361dbffe1609fd0.d: crates/bench/src/bin/table4_config.rs

/root/repo/target/debug/deps/table4_config-c361dbffe1609fd0: crates/bench/src/bin/table4_config.rs

crates/bench/src/bin/table4_config.rs:
