/root/repo/target/debug/deps/eval_all-ddf75edcb7ea85cf.d: crates/bench/src/bin/eval_all.rs Cargo.toml

/root/repo/target/debug/deps/libeval_all-ddf75edcb7ea85cf.rmeta: crates/bench/src/bin/eval_all.rs Cargo.toml

crates/bench/src/bin/eval_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
