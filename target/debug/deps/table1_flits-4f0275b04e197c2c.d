/root/repo/target/debug/deps/table1_flits-4f0275b04e197c2c.d: crates/bench/src/bin/table1_flits.rs

/root/repo/target/debug/deps/libtable1_flits-4f0275b04e197c2c.rmeta: crates/bench/src/bin/table1_flits.rs

crates/bench/src/bin/table1_flits.rs:
