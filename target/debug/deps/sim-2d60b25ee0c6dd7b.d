/root/repo/target/debug/deps/sim-2d60b25ee0c6dd7b.d: crates/bench/src/bin/sim.rs

/root/repo/target/debug/deps/sim-2d60b25ee0c6dd7b: crates/bench/src/bin/sim.rs

crates/bench/src/bin/sim.rs:
