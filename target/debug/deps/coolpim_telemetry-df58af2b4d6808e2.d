/root/repo/target/debug/deps/coolpim_telemetry-df58af2b4d6808e2.d: crates/telemetry/src/lib.rs crates/telemetry/src/analysis.rs crates/telemetry/src/event.rs crates/telemetry/src/flight.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libcoolpim_telemetry-df58af2b4d6808e2.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/analysis.rs crates/telemetry/src/event.rs crates/telemetry/src/flight.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/analysis.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/flight.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
