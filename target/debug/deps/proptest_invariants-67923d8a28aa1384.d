/root/repo/target/debug/deps/proptest_invariants-67923d8a28aa1384.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/libproptest_invariants-67923d8a28aa1384.rmeta: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
