/root/repo/target/debug/deps/thermal_solver-09ff41fafbf8c5e3.d: crates/bench/benches/thermal_solver.rs Cargo.toml

/root/repo/target/debug/deps/libthermal_solver-09ff41fafbf8c5e3.rmeta: crates/bench/benches/thermal_solver.rs Cargo.toml

crates/bench/benches/thermal_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
