/root/repo/target/debug/deps/table2_cooling-9ae32391c8318247.d: crates/bench/src/bin/table2_cooling.rs

/root/repo/target/debug/deps/table2_cooling-9ae32391c8318247: crates/bench/src/bin/table2_cooling.rs

crates/bench/src/bin/table2_cooling.rs:
