/root/repo/target/debug/deps/ablation_cf-0961a0130063e2d2.d: crates/bench/src/bin/ablation_cf.rs

/root/repo/target/debug/deps/ablation_cf-0961a0130063e2d2: crates/bench/src/bin/ablation_cf.rs

crates/bench/src/bin/ablation_cf.rs:
