/root/repo/target/debug/deps/fig11_bandwidth-9bd0f6decc0d8734.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/debug/deps/fig11_bandwidth-9bd0f6decc0d8734: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
