/root/repo/target/debug/deps/hmc_throughput-b61641b1c2089f9d.d: crates/bench/benches/hmc_throughput.rs

/root/repo/target/debug/deps/hmc_throughput-b61641b1c2089f9d: crates/bench/benches/hmc_throughput.rs

crates/bench/benches/hmc_throughput.rs:
