/root/repo/target/debug/deps/integration_cosim-38fd18cbe5401f1b.d: tests/integration_cosim.rs

/root/repo/target/debug/deps/integration_cosim-38fd18cbe5401f1b: tests/integration_cosim.rs

tests/integration_cosim.rs:
