/root/repo/target/debug/deps/sim-27b07d4b090b397c.d: crates/bench/src/bin/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsim-27b07d4b090b397c.rmeta: crates/bench/src/bin/sim.rs Cargo.toml

crates/bench/src/bin/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
