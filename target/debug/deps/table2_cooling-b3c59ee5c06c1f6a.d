/root/repo/target/debug/deps/table2_cooling-b3c59ee5c06c1f6a.d: crates/bench/src/bin/table2_cooling.rs

/root/repo/target/debug/deps/libtable2_cooling-b3c59ee5c06c1f6a.rmeta: crates/bench/src/bin/table2_cooling.rs

crates/bench/src/bin/table2_cooling.rs:
