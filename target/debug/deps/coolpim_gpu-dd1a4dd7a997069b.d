/root/repo/target/debug/deps/coolpim_gpu-dd1a4dd7a997069b.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/controller.rs crates/gpu/src/isa.rs crates/gpu/src/kernel.rs crates/gpu/src/stats.rs crates/gpu/src/system.rs

/root/repo/target/debug/deps/libcoolpim_gpu-dd1a4dd7a997069b.rlib: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/controller.rs crates/gpu/src/isa.rs crates/gpu/src/kernel.rs crates/gpu/src/stats.rs crates/gpu/src/system.rs

/root/repo/target/debug/deps/libcoolpim_gpu-dd1a4dd7a997069b.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/controller.rs crates/gpu/src/isa.rs crates/gpu/src/kernel.rs crates/gpu/src/stats.rs crates/gpu/src/system.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/coalesce.rs:
crates/gpu/src/config.rs:
crates/gpu/src/controller.rs:
crates/gpu/src/isa.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/stats.rs:
crates/gpu/src/system.rs:
