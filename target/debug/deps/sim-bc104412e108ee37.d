/root/repo/target/debug/deps/sim-bc104412e108ee37.d: crates/bench/src/bin/sim.rs

/root/repo/target/debug/deps/libsim-bc104412e108ee37.rmeta: crates/bench/src/bin/sim.rs

crates/bench/src/bin/sim.rs:
