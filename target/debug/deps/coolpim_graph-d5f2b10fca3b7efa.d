/root/repo/target/debug/deps/coolpim_graph-d5f2b10fca3b7efa.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/layout.rs crates/graph/src/reference.rs crates/graph/src/rng.rs crates/graph/src/trace.rs crates/graph/src/workloads/mod.rs crates/graph/src/workloads/bfs.rs crates/graph/src/workloads/cc.rs crates/graph/src/workloads/common.rs crates/graph/src/workloads/dc.rs crates/graph/src/workloads/kcore.rs crates/graph/src/workloads/pagerank.rs crates/graph/src/workloads/sssp.rs

/root/repo/target/debug/deps/libcoolpim_graph-d5f2b10fca3b7efa.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/layout.rs crates/graph/src/reference.rs crates/graph/src/rng.rs crates/graph/src/trace.rs crates/graph/src/workloads/mod.rs crates/graph/src/workloads/bfs.rs crates/graph/src/workloads/cc.rs crates/graph/src/workloads/common.rs crates/graph/src/workloads/dc.rs crates/graph/src/workloads/kcore.rs crates/graph/src/workloads/pagerank.rs crates/graph/src/workloads/sssp.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/generate.rs:
crates/graph/src/io.rs:
crates/graph/src/layout.rs:
crates/graph/src/reference.rs:
crates/graph/src/rng.rs:
crates/graph/src/trace.rs:
crates/graph/src/workloads/mod.rs:
crates/graph/src/workloads/bfs.rs:
crates/graph/src/workloads/cc.rs:
crates/graph/src/workloads/common.rs:
crates/graph/src/workloads/dc.rs:
crates/graph/src/workloads/kcore.rs:
crates/graph/src/workloads/pagerank.rs:
crates/graph/src/workloads/sssp.rs:
