/root/repo/target/debug/deps/ablation_margin-cf60f3b903f9227a.d: crates/bench/src/bin/ablation_margin.rs Cargo.toml

/root/repo/target/debug/deps/libablation_margin-cf60f3b903f9227a.rmeta: crates/bench/src/bin/ablation_margin.rs Cargo.toml

crates/bench/src/bin/ablation_margin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
