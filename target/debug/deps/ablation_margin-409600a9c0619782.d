/root/repo/target/debug/deps/ablation_margin-409600a9c0619782.d: crates/bench/src/bin/ablation_margin.rs

/root/repo/target/debug/deps/ablation_margin-409600a9c0619782: crates/bench/src/bin/ablation_margin.rs

crates/bench/src/bin/ablation_margin.rs:
