/root/repo/target/debug/deps/hmc_throughput-c1200b05dff6290a.d: crates/bench/benches/hmc_throughput.rs

/root/repo/target/debug/deps/hmc_throughput-c1200b05dff6290a: crates/bench/benches/hmc_throughput.rs

crates/bench/benches/hmc_throughput.rs:
