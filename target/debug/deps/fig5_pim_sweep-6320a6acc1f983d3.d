/root/repo/target/debug/deps/fig5_pim_sweep-6320a6acc1f983d3.d: crates/bench/src/bin/fig5_pim_sweep.rs

/root/repo/target/debug/deps/fig5_pim_sweep-6320a6acc1f983d3: crates/bench/src/bin/fig5_pim_sweep.rs

crates/bench/src/bin/fig5_pim_sweep.rs:
