/root/repo/target/debug/deps/ablation_margin-92e06e4fed726b3f.d: crates/bench/src/bin/ablation_margin.rs

/root/repo/target/debug/deps/libablation_margin-92e06e4fed726b3f.rmeta: crates/bench/src/bin/ablation_margin.rs

crates/bench/src/bin/ablation_margin.rs:
