/root/repo/target/debug/deps/fig2_validation-ef00148da7f2e730.d: crates/bench/src/bin/fig2_validation.rs

/root/repo/target/debug/deps/fig2_validation-ef00148da7f2e730: crates/bench/src/bin/fig2_validation.rs

crates/bench/src/bin/fig2_validation.rs:
