/root/repo/target/debug/deps/cosim_end_to_end-3d08715227b05cc2.d: crates/bench/benches/cosim_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libcosim_end_to_end-3d08715227b05cc2.rmeta: crates/bench/benches/cosim_end_to_end.rs Cargo.toml

crates/bench/benches/cosim_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
