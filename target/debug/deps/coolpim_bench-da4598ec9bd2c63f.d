/root/repo/target/debug/deps/coolpim_bench-da4598ec9bd2c63f.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

/root/repo/target/debug/deps/libcoolpim_bench-da4598ec9bd2c63f.rlib: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

/root/repo/target/debug/deps/libcoolpim_bench-da4598ec9bd2c63f.rmeta: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/harness.rs:
crates/bench/src/runrec.rs:
