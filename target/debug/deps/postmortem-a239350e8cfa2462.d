/root/repo/target/debug/deps/postmortem-a239350e8cfa2462.d: crates/bench/src/bin/postmortem.rs Cargo.toml

/root/repo/target/debug/deps/libpostmortem-a239350e8cfa2462.rmeta: crates/bench/src/bin/postmortem.rs Cargo.toml

crates/bench/src/bin/postmortem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
