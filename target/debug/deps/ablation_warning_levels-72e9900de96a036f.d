/root/repo/target/debug/deps/ablation_warning_levels-72e9900de96a036f.d: crates/bench/src/bin/ablation_warning_levels.rs Cargo.toml

/root/repo/target/debug/deps/libablation_warning_levels-72e9900de96a036f.rmeta: crates/bench/src/bin/ablation_warning_levels.rs Cargo.toml

crates/bench/src/bin/ablation_warning_levels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
