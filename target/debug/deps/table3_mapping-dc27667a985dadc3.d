/root/repo/target/debug/deps/table3_mapping-dc27667a985dadc3.d: crates/bench/src/bin/table3_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_mapping-dc27667a985dadc3.rmeta: crates/bench/src/bin/table3_mapping.rs Cargo.toml

crates/bench/src/bin/table3_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
