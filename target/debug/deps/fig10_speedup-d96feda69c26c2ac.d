/root/repo/target/debug/deps/fig10_speedup-d96feda69c26c2ac.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/debug/deps/fig10_speedup-d96feda69c26c2ac: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
