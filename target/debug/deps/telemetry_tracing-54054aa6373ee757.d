/root/repo/target/debug/deps/telemetry_tracing-54054aa6373ee757.d: tests/telemetry_tracing.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_tracing-54054aa6373ee757.rmeta: tests/telemetry_tracing.rs Cargo.toml

tests/telemetry_tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
