/root/repo/target/debug/deps/fig4_bw_sweep-87f3d998100fc927.d: crates/bench/src/bin/fig4_bw_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_bw_sweep-87f3d998100fc927.rmeta: crates/bench/src/bin/fig4_bw_sweep.rs Cargo.toml

crates/bench/src/bin/fig4_bw_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
