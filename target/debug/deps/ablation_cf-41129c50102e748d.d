/root/repo/target/debug/deps/ablation_cf-41129c50102e748d.d: crates/bench/src/bin/ablation_cf.rs

/root/repo/target/debug/deps/libablation_cf-41129c50102e748d.rmeta: crates/bench/src/bin/ablation_cf.rs

crates/bench/src/bin/ablation_cf.rs:
