/root/repo/target/debug/deps/thermal_solver-aba085bdc87c3f9f.d: crates/bench/benches/thermal_solver.rs

/root/repo/target/debug/deps/thermal_solver-aba085bdc87c3f9f: crates/bench/benches/thermal_solver.rs

crates/bench/benches/thermal_solver.rs:
