/root/repo/target/debug/deps/hmc_throughput-a82bb29b829c8308.d: crates/bench/benches/hmc_throughput.rs

/root/repo/target/debug/deps/hmc_throughput-a82bb29b829c8308: crates/bench/benches/hmc_throughput.rs

crates/bench/benches/hmc_throughput.rs:
