/root/repo/target/debug/deps/coolpim_hmc-85977f9f3fec34ce.d: crates/hmc/src/lib.rs crates/hmc/src/bank.rs crates/hmc/src/command.rs crates/hmc/src/cube.rs crates/hmc/src/flit.rs crates/hmc/src/link.rs crates/hmc/src/packet.rs crates/hmc/src/stats.rs crates/hmc/src/thermal_state.rs crates/hmc/src/timing.rs crates/hmc/src/vault.rs

/root/repo/target/debug/deps/libcoolpim_hmc-85977f9f3fec34ce.rmeta: crates/hmc/src/lib.rs crates/hmc/src/bank.rs crates/hmc/src/command.rs crates/hmc/src/cube.rs crates/hmc/src/flit.rs crates/hmc/src/link.rs crates/hmc/src/packet.rs crates/hmc/src/stats.rs crates/hmc/src/thermal_state.rs crates/hmc/src/timing.rs crates/hmc/src/vault.rs

crates/hmc/src/lib.rs:
crates/hmc/src/bank.rs:
crates/hmc/src/command.rs:
crates/hmc/src/cube.rs:
crates/hmc/src/flit.rs:
crates/hmc/src/link.rs:
crates/hmc/src/packet.rs:
crates/hmc/src/stats.rs:
crates/hmc/src/thermal_state.rs:
crates/hmc/src/timing.rs:
crates/hmc/src/vault.rs:
