/root/repo/target/debug/deps/ablation_margin-aae09382b97d15dd.d: crates/bench/src/bin/ablation_margin.rs

/root/repo/target/debug/deps/ablation_margin-aae09382b97d15dd: crates/bench/src/bin/ablation_margin.rs

crates/bench/src/bin/ablation_margin.rs:
