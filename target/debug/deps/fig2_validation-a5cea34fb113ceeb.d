/root/repo/target/debug/deps/fig2_validation-a5cea34fb113ceeb.d: crates/bench/src/bin/fig2_validation.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_validation-a5cea34fb113ceeb.rmeta: crates/bench/src/bin/fig2_validation.rs Cargo.toml

crates/bench/src/bin/fig2_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
