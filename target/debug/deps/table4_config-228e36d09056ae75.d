/root/repo/target/debug/deps/table4_config-228e36d09056ae75.d: crates/bench/src/bin/table4_config.rs

/root/repo/target/debug/deps/libtable4_config-228e36d09056ae75.rmeta: crates/bench/src/bin/table4_config.rs

crates/bench/src/bin/table4_config.rs:
