/root/repo/target/debug/deps/sim-49bf6063d6ed80a8.d: crates/bench/src/bin/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsim-49bf6063d6ed80a8.rmeta: crates/bench/src/bin/sim.rs Cargo.toml

crates/bench/src/bin/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
