/root/repo/target/debug/deps/fig1_prototype-e56d1cd4c9f17f5e.d: crates/bench/src/bin/fig1_prototype.rs

/root/repo/target/debug/deps/libfig1_prototype-e56d1cd4c9f17f5e.rmeta: crates/bench/src/bin/fig1_prototype.rs

crates/bench/src/bin/fig1_prototype.rs:
