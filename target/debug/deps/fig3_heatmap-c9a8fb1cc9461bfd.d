/root/repo/target/debug/deps/fig3_heatmap-c9a8fb1cc9461bfd.d: crates/bench/src/bin/fig3_heatmap.rs

/root/repo/target/debug/deps/libfig3_heatmap-c9a8fb1cc9461bfd.rmeta: crates/bench/src/bin/fig3_heatmap.rs

crates/bench/src/bin/fig3_heatmap.rs:
