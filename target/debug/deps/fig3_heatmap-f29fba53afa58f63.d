/root/repo/target/debug/deps/fig3_heatmap-f29fba53afa58f63.d: crates/bench/src/bin/fig3_heatmap.rs

/root/repo/target/debug/deps/libfig3_heatmap-f29fba53afa58f63.rmeta: crates/bench/src/bin/fig3_heatmap.rs

crates/bench/src/bin/fig3_heatmap.rs:
