/root/repo/target/debug/deps/fig5_pim_sweep-b1f3156368147974.d: crates/bench/src/bin/fig5_pim_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pim_sweep-b1f3156368147974.rmeta: crates/bench/src/bin/fig5_pim_sweep.rs Cargo.toml

crates/bench/src/bin/fig5_pim_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
