/root/repo/target/debug/deps/fig2_validation-84961fe5c1ce3ce0.d: crates/bench/src/bin/fig2_validation.rs

/root/repo/target/debug/deps/fig2_validation-84961fe5c1ce3ce0: crates/bench/src/bin/fig2_validation.rs

crates/bench/src/bin/fig2_validation.rs:
