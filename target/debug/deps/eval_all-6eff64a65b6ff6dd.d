/root/repo/target/debug/deps/eval_all-6eff64a65b6ff6dd.d: crates/bench/src/bin/eval_all.rs

/root/repo/target/debug/deps/libeval_all-6eff64a65b6ff6dd.rmeta: crates/bench/src/bin/eval_all.rs

crates/bench/src/bin/eval_all.rs:
