/root/repo/target/debug/deps/integration_cosim-766dacdc08815175.d: tests/integration_cosim.rs

/root/repo/target/debug/deps/libintegration_cosim-766dacdc08815175.rmeta: tests/integration_cosim.rs

tests/integration_cosim.rs:
