/root/repo/target/debug/deps/fig1_prototype-b984ad31a81b14ed.d: crates/bench/src/bin/fig1_prototype.rs

/root/repo/target/debug/deps/fig1_prototype-b984ad31a81b14ed: crates/bench/src/bin/fig1_prototype.rs

crates/bench/src/bin/fig1_prototype.rs:
