/root/repo/target/debug/deps/hmc_throughput-dd98724ec9acd731.d: crates/bench/benches/hmc_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libhmc_throughput-dd98724ec9acd731.rmeta: crates/bench/benches/hmc_throughput.rs Cargo.toml

crates/bench/benches/hmc_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
