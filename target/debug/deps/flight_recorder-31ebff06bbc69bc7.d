/root/repo/target/debug/deps/flight_recorder-31ebff06bbc69bc7.d: tests/flight_recorder.rs

/root/repo/target/debug/deps/flight_recorder-31ebff06bbc69bc7: tests/flight_recorder.rs

tests/flight_recorder.rs:
