/root/repo/target/debug/deps/coolpim_bench-216cb083d7f37c1e.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

/root/repo/target/debug/deps/libcoolpim_bench-216cb083d7f37c1e.rmeta: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/harness.rs:
crates/bench/src/runrec.rs:
