/root/repo/target/debug/deps/fig2_validation-7611381ca784b21d.d: crates/bench/src/bin/fig2_validation.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_validation-7611381ca784b21d.rmeta: crates/bench/src/bin/fig2_validation.rs Cargo.toml

crates/bench/src/bin/fig2_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
