/root/repo/target/debug/deps/bench_compare-a7163d9065aa51e4.d: crates/bench/src/bin/bench_compare.rs

/root/repo/target/debug/deps/libbench_compare-a7163d9065aa51e4.rmeta: crates/bench/src/bin/bench_compare.rs

crates/bench/src/bin/bench_compare.rs:
