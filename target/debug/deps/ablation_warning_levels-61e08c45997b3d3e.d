/root/repo/target/debug/deps/ablation_warning_levels-61e08c45997b3d3e.d: crates/bench/src/bin/ablation_warning_levels.rs

/root/repo/target/debug/deps/ablation_warning_levels-61e08c45997b3d3e: crates/bench/src/bin/ablation_warning_levels.rs

crates/bench/src/bin/ablation_warning_levels.rs:
