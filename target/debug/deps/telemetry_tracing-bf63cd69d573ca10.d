/root/repo/target/debug/deps/telemetry_tracing-bf63cd69d573ca10.d: tests/telemetry_tracing.rs

/root/repo/target/debug/deps/libtelemetry_tracing-bf63cd69d573ca10.rmeta: tests/telemetry_tracing.rs

tests/telemetry_tracing.rs:
