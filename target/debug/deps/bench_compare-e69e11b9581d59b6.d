/root/repo/target/debug/deps/bench_compare-e69e11b9581d59b6.d: crates/bench/src/bin/bench_compare.rs Cargo.toml

/root/repo/target/debug/deps/libbench_compare-e69e11b9581d59b6.rmeta: crates/bench/src/bin/bench_compare.rs Cargo.toml

crates/bench/src/bin/bench_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
