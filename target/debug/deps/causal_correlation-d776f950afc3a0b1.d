/root/repo/target/debug/deps/causal_correlation-d776f950afc3a0b1.d: tests/causal_correlation.rs

/root/repo/target/debug/deps/libcausal_correlation-d776f950afc3a0b1.rmeta: tests/causal_correlation.rs

tests/causal_correlation.rs:
