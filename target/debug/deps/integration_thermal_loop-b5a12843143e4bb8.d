/root/repo/target/debug/deps/integration_thermal_loop-b5a12843143e4bb8.d: tests/integration_thermal_loop.rs

/root/repo/target/debug/deps/libintegration_thermal_loop-b5a12843143e4bb8.rmeta: tests/integration_thermal_loop.rs

tests/integration_thermal_loop.rs:
