/root/repo/target/debug/deps/coolpim_bench-5d4500b87582a4a6.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs Cargo.toml

/root/repo/target/debug/deps/libcoolpim_bench-5d4500b87582a4a6.rmeta: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/harness.rs:
crates/bench/src/runrec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
