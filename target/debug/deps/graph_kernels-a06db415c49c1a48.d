/root/repo/target/debug/deps/graph_kernels-a06db415c49c1a48.d: crates/bench/benches/graph_kernels.rs

/root/repo/target/debug/deps/libgraph_kernels-a06db415c49c1a48.rmeta: crates/bench/benches/graph_kernels.rs

crates/bench/benches/graph_kernels.rs:
