/root/repo/target/debug/deps/fig13_peak_temp-fdc57adec64d6412.d: crates/bench/src/bin/fig13_peak_temp.rs

/root/repo/target/debug/deps/fig13_peak_temp-fdc57adec64d6412: crates/bench/src/bin/fig13_peak_temp.rs

crates/bench/src/bin/fig13_peak_temp.rs:
