/root/repo/target/debug/deps/cosim_end_to_end-16ca2c006679e5a8.d: crates/bench/benches/cosim_end_to_end.rs

/root/repo/target/debug/deps/cosim_end_to_end-16ca2c006679e5a8: crates/bench/benches/cosim_end_to_end.rs

crates/bench/benches/cosim_end_to_end.rs:
