/root/repo/target/debug/deps/fig13_peak_temp-1a9668997a73960f.d: crates/bench/src/bin/fig13_peak_temp.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_peak_temp-1a9668997a73960f.rmeta: crates/bench/src/bin/fig13_peak_temp.rs Cargo.toml

crates/bench/src/bin/fig13_peak_temp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
