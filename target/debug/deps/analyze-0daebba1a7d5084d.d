/root/repo/target/debug/deps/analyze-0daebba1a7d5084d.d: crates/bench/src/bin/analyze.rs

/root/repo/target/debug/deps/libanalyze-0daebba1a7d5084d.rmeta: crates/bench/src/bin/analyze.rs

crates/bench/src/bin/analyze.rs:
