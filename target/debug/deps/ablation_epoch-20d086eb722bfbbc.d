/root/repo/target/debug/deps/ablation_epoch-20d086eb722bfbbc.d: crates/bench/src/bin/ablation_epoch.rs

/root/repo/target/debug/deps/ablation_epoch-20d086eb722bfbbc: crates/bench/src/bin/ablation_epoch.rs

crates/bench/src/bin/ablation_epoch.rs:
