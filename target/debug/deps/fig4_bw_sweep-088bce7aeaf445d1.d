/root/repo/target/debug/deps/fig4_bw_sweep-088bce7aeaf445d1.d: crates/bench/src/bin/fig4_bw_sweep.rs

/root/repo/target/debug/deps/fig4_bw_sweep-088bce7aeaf445d1: crates/bench/src/bin/fig4_bw_sweep.rs

crates/bench/src/bin/fig4_bw_sweep.rs:
