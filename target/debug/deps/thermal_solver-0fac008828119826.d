/root/repo/target/debug/deps/thermal_solver-0fac008828119826.d: crates/bench/benches/thermal_solver.rs

/root/repo/target/debug/deps/thermal_solver-0fac008828119826: crates/bench/benches/thermal_solver.rs

crates/bench/benches/thermal_solver.rs:
