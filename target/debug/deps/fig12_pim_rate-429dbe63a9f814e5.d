/root/repo/target/debug/deps/fig12_pim_rate-429dbe63a9f814e5.d: crates/bench/src/bin/fig12_pim_rate.rs

/root/repo/target/debug/deps/fig12_pim_rate-429dbe63a9f814e5: crates/bench/src/bin/fig12_pim_rate.rs

crates/bench/src/bin/fig12_pim_rate.rs:
