/root/repo/target/debug/deps/fig5_pim_sweep-3df5d7e2f8ebc8a5.d: crates/bench/src/bin/fig5_pim_sweep.rs

/root/repo/target/debug/deps/fig5_pim_sweep-3df5d7e2f8ebc8a5: crates/bench/src/bin/fig5_pim_sweep.rs

crates/bench/src/bin/fig5_pim_sweep.rs:
