/root/repo/target/debug/deps/fig14_timeline-11b2d7354cdf8f43.d: crates/bench/src/bin/fig14_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_timeline-11b2d7354cdf8f43.rmeta: crates/bench/src/bin/fig14_timeline.rs Cargo.toml

crates/bench/src/bin/fig14_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
