/root/repo/target/debug/deps/thermal_solver-72d11c381cb46551.d: crates/bench/benches/thermal_solver.rs

/root/repo/target/debug/deps/libthermal_solver-72d11c381cb46551.rmeta: crates/bench/benches/thermal_solver.rs

crates/bench/benches/thermal_solver.rs:
