/root/repo/target/debug/deps/causal_correlation-4d6f5fe6cd492ac6.d: tests/causal_correlation.rs Cargo.toml

/root/repo/target/debug/deps/libcausal_correlation-4d6f5fe6cd492ac6.rmeta: tests/causal_correlation.rs Cargo.toml

tests/causal_correlation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
