/root/repo/target/debug/deps/fig3_heatmap-f35f9829c3697371.d: crates/bench/src/bin/fig3_heatmap.rs

/root/repo/target/debug/deps/fig3_heatmap-f35f9829c3697371: crates/bench/src/bin/fig3_heatmap.rs

crates/bench/src/bin/fig3_heatmap.rs:
