/root/repo/target/debug/deps/fig4_bw_sweep-690593b5494946c1.d: crates/bench/src/bin/fig4_bw_sweep.rs

/root/repo/target/debug/deps/libfig4_bw_sweep-690593b5494946c1.rmeta: crates/bench/src/bin/fig4_bw_sweep.rs

crates/bench/src/bin/fig4_bw_sweep.rs:
