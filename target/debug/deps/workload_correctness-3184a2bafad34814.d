/root/repo/target/debug/deps/workload_correctness-3184a2bafad34814.d: crates/graph/tests/workload_correctness.rs

/root/repo/target/debug/deps/libworkload_correctness-3184a2bafad34814.rmeta: crates/graph/tests/workload_correctness.rs

crates/graph/tests/workload_correctness.rs:
