/root/repo/target/debug/deps/postmortem-17f977b09ee949f2.d: crates/bench/src/bin/postmortem.rs

/root/repo/target/debug/deps/libpostmortem-17f977b09ee949f2.rmeta: crates/bench/src/bin/postmortem.rs

crates/bench/src/bin/postmortem.rs:
