/root/repo/target/debug/deps/coolpim_bench-a51b4781a770cf73.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

/root/repo/target/debug/deps/libcoolpim_bench-a51b4781a770cf73.rmeta: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/harness.rs crates/bench/src/runrec.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/harness.rs:
crates/bench/src/runrec.rs:
