/root/repo/target/debug/deps/table2_cooling-21669c066ec4480f.d: crates/bench/src/bin/table2_cooling.rs

/root/repo/target/debug/deps/libtable2_cooling-21669c066ec4480f.rmeta: crates/bench/src/bin/table2_cooling.rs

crates/bench/src/bin/table2_cooling.rs:
