/root/repo/target/debug/deps/coolpim_gpu-d578b08318a36480.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/controller.rs crates/gpu/src/isa.rs crates/gpu/src/kernel.rs crates/gpu/src/stats.rs crates/gpu/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libcoolpim_gpu-d578b08318a36480.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/coalesce.rs crates/gpu/src/config.rs crates/gpu/src/controller.rs crates/gpu/src/isa.rs crates/gpu/src/kernel.rs crates/gpu/src/stats.rs crates/gpu/src/system.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/coalesce.rs:
crates/gpu/src/config.rs:
crates/gpu/src/controller.rs:
crates/gpu/src/isa.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/stats.rs:
crates/gpu/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
