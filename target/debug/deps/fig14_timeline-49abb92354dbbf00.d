/root/repo/target/debug/deps/fig14_timeline-49abb92354dbbf00.d: crates/bench/src/bin/fig14_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_timeline-49abb92354dbbf00.rmeta: crates/bench/src/bin/fig14_timeline.rs Cargo.toml

crates/bench/src/bin/fig14_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
