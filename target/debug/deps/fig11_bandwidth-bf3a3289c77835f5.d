/root/repo/target/debug/deps/fig11_bandwidth-bf3a3289c77835f5.d: crates/bench/src/bin/fig11_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_bandwidth-bf3a3289c77835f5.rmeta: crates/bench/src/bin/fig11_bandwidth.rs Cargo.toml

crates/bench/src/bin/fig11_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
