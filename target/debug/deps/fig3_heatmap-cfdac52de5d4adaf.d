/root/repo/target/debug/deps/fig3_heatmap-cfdac52de5d4adaf.d: crates/bench/src/bin/fig3_heatmap.rs

/root/repo/target/debug/deps/fig3_heatmap-cfdac52de5d4adaf: crates/bench/src/bin/fig3_heatmap.rs

crates/bench/src/bin/fig3_heatmap.rs:
