/root/repo/target/debug/deps/table1_flits-8b681fc9d6c13fe9.d: crates/bench/src/bin/table1_flits.rs

/root/repo/target/debug/deps/table1_flits-8b681fc9d6c13fe9: crates/bench/src/bin/table1_flits.rs

crates/bench/src/bin/table1_flits.rs:
