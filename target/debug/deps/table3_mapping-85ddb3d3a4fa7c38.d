/root/repo/target/debug/deps/table3_mapping-85ddb3d3a4fa7c38.d: crates/bench/src/bin/table3_mapping.rs

/root/repo/target/debug/deps/table3_mapping-85ddb3d3a4fa7c38: crates/bench/src/bin/table3_mapping.rs

crates/bench/src/bin/table3_mapping.rs:
