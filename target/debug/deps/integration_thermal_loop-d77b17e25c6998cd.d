/root/repo/target/debug/deps/integration_thermal_loop-d77b17e25c6998cd.d: tests/integration_thermal_loop.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_thermal_loop-d77b17e25c6998cd.rmeta: tests/integration_thermal_loop.rs Cargo.toml

tests/integration_thermal_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
