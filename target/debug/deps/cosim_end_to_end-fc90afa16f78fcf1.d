/root/repo/target/debug/deps/cosim_end_to_end-fc90afa16f78fcf1.d: crates/bench/benches/cosim_end_to_end.rs

/root/repo/target/debug/deps/libcosim_end_to_end-fc90afa16f78fcf1.rmeta: crates/bench/benches/cosim_end_to_end.rs

crates/bench/benches/cosim_end_to_end.rs:
