/root/repo/target/debug/deps/fig14_timeline-4aa235ed48280a86.d: crates/bench/src/bin/fig14_timeline.rs

/root/repo/target/debug/deps/libfig14_timeline-4aa235ed48280a86.rmeta: crates/bench/src/bin/fig14_timeline.rs

crates/bench/src/bin/fig14_timeline.rs:
