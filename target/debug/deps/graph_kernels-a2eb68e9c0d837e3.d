/root/repo/target/debug/deps/graph_kernels-a2eb68e9c0d837e3.d: crates/bench/benches/graph_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libgraph_kernels-a2eb68e9c0d837e3.rmeta: crates/bench/benches/graph_kernels.rs Cargo.toml

crates/bench/benches/graph_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
